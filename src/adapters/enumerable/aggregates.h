#ifndef CALCITE_ADAPTERS_ENUMERABLE_AGGREGATES_H_
#define CALCITE_ADAPTERS_ENUMERABLE_AGGREGATES_H_

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "rel/rel_node.h"
#include "type/value.h"
#include "util/status.h"

namespace calcite {

/// Runtime accumulator for one aggregate call (COUNT/SUM/MIN/MAX/AVG/...),
/// including DISTINCT handling. Shared by the enumerable hash aggregate, the
/// window operator, and the streaming executor.
class AggAccumulator {
 public:
  explicit AggAccumulator(const AggregateCall& call) : call_(&call) {}

  /// Feeds one input row.
  Status Add(const Row& row);

  /// Feeds a whole batch with a single dispatch — the batched executor's
  /// path for global (ungrouped) aggregates. COUNT(*) degenerates to one
  /// addition per batch.
  Status AddBatch(const std::vector<Row>& rows);

  /// Selection-aware AddBatch: feeds only the rows named by `sel` (all rows
  /// when nullptr), so a filter's un-compacted batch feeds the accumulator
  /// directly. COUNT(*) degenerates to one addition of the selection size.
  Status AddBatchSel(const std::vector<Row>& rows, const SelectionVector* sel);

  /// Produces the aggregate result. For empty input: COUNT-like functions
  /// return 0, the others NULL (SQL semantics).
  Value Finish() const;

  /// Folds another accumulator's partial state into this one — the merge
  /// step of the partitioned (thread-local build) parallel hash aggregate.
  /// Both accumulators must have been created for the same AggregateCall.
  /// DISTINCT states merge by set union (replaying only first-seen values);
  /// SINGLE_VALUE errors if both sides saw a row, matching what a serial
  /// pass over the union of their inputs would do.
  Status MergeFrom(const AggAccumulator& other);

  // Columnar fast paths. The typed adders below feed one already-extracted
  // non-NULL value without boxing it; they must update the exact same state
  // AccumulateValue would (the columnar/row parity suite enforces it). The
  // typed variants are only legal for non-DISTINCT calls — DISTINCT dedup
  // needs the boxed value, so the columnar aggregate routes those through
  // AddNonNullValue.

  /// COUNT(*): counts n rows in one update.
  void AddCountStarN(int64_t n) { count_ += n; }

  /// Boxed add of a non-NULL value (DISTINCT dedup then the shared
  /// accumulate path) — identical to Add() after its NULL check.
  Status AddNonNullValue(const Value& v) {
    if (call_->distinct && !distinct_values_.insert(v).second) {
      return Status::OK();
    }
    return AccumulateValue(v);
  }

  /// Non-NULL int64 from an INT-class column.
  Status AddNonNullInt64(int64_t v) {
    switch (call_->kind) {
      case AggKind::kCount:
        ++count_;
        return Status::OK();
      case AggKind::kSum:
      case AggKind::kAvg:
        ++count_;
        if (sum_is_double_) {
          sum_double_ += static_cast<double>(v);
        } else {
          sum_int_ += v;
        }
        return Status::OK();
      case AggKind::kMin:
        if (has_value_ && min_.is_int()) {
          if (v < min_.AsInt()) min_ = Value::Int(v);
          return Status::OK();
        }
        return AccumulateValue(Value::Int(v));
      case AggKind::kMax:
        if (has_value_ && max_.is_int()) {
          if (v > max_.AsInt()) max_ = Value::Int(v);
          return Status::OK();
        }
        return AccumulateValue(Value::Int(v));
      default:
        return AccumulateValue(Value::Int(v));
    }
  }

  /// Non-NULL double from a DOUBLE-class column.
  Status AddNonNullDouble(double v) {
    switch (call_->kind) {
      case AggKind::kCount:
        ++count_;
        return Status::OK();
      case AggKind::kSum:
      case AggKind::kAvg:
        ++count_;
        if (!sum_is_double_) {
          sum_double_ = static_cast<double>(sum_int_);
          sum_is_double_ = true;
        }
        sum_double_ += v;
        return Status::OK();
      case AggKind::kMin:
        if (has_value_ && min_.is_double()) {
          if (v < min_.AsDouble()) min_ = Value::Double(v);
          return Status::OK();
        }
        return AccumulateValue(Value::Double(v));
      case AggKind::kMax:
        if (has_value_ && max_.is_double()) {
          if (v > max_.AsDouble()) max_ = Value::Double(v);
          return Status::OK();
        }
        return AccumulateValue(Value::Double(v));
      default:
        return AccumulateValue(Value::Double(v));
    }
  }

  /// Non-NULL string span from a VARCHAR-class column. Only boxes (copies)
  /// the string when it becomes the new MIN/MAX.
  Status AddNonNullStringView(std::string_view v) {
    switch (call_->kind) {
      case AggKind::kCount:
        ++count_;
        return Status::OK();
      case AggKind::kSum:
      case AggKind::kAvg:
        // Matches AccumulateValue's error for non-numeric input.
        return Status::RuntimeError("SUM/AVG over non-numeric value");
      case AggKind::kMin:
        if (has_value_ && min_.is_string()) {
          if (v < std::string_view(min_.AsString())) {
            min_ = Value::String(std::string(v));
          }
          return Status::OK();
        }
        return AccumulateValue(Value::String(std::string(v)));
      case AggKind::kMax:
        if (has_value_ && max_.is_string()) {
          if (v > std::string_view(max_.AsString())) {
            max_ = Value::String(std::string(v));
          }
          return Status::OK();
        }
        return AccumulateValue(Value::String(std::string(v)));
      default:
        return AccumulateValue(Value::String(std::string(v)));
    }
  }

 private:
  /// Applies one non-NULL (and, for DISTINCT, first-seen) value to the
  /// running state. Shared by Add and the DISTINCT merge path.
  Status AccumulateValue(const Value& v);

  const AggregateCall* call_;
  int64_t count_ = 0;
  double sum_double_ = 0;
  int64_t sum_int_ = 0;
  bool sum_is_double_ = false;
  Value min_;
  Value max_;
  Value single_;
  bool has_value_ = false;
  std::set<Value> distinct_values_;
};

/// Evaluates a full group: runs all `calls` over `rows` and appends results.
Status ComputeAggregates(const std::vector<AggregateCall>& calls,
                         const std::vector<Row>& rows, Row* out);

}  // namespace calcite

#endif  // CALCITE_ADAPTERS_ENUMERABLE_AGGREGATES_H_
