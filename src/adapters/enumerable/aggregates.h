#ifndef CALCITE_ADAPTERS_ENUMERABLE_AGGREGATES_H_
#define CALCITE_ADAPTERS_ENUMERABLE_AGGREGATES_H_

#include <set>
#include <vector>

#include "rel/rel_node.h"
#include "type/value.h"
#include "util/status.h"

namespace calcite {

/// Runtime accumulator for one aggregate call (COUNT/SUM/MIN/MAX/AVG/...),
/// including DISTINCT handling. Shared by the enumerable hash aggregate, the
/// window operator, and the streaming executor.
class AggAccumulator {
 public:
  explicit AggAccumulator(const AggregateCall& call) : call_(&call) {}

  /// Feeds one input row.
  Status Add(const Row& row);

  /// Feeds a whole batch with a single dispatch — the batched executor's
  /// path for global (ungrouped) aggregates. COUNT(*) degenerates to one
  /// addition per batch.
  Status AddBatch(const std::vector<Row>& rows);

  /// Selection-aware AddBatch: feeds only the rows named by `sel` (all rows
  /// when nullptr), so a filter's un-compacted batch feeds the accumulator
  /// directly. COUNT(*) degenerates to one addition of the selection size.
  Status AddBatchSel(const std::vector<Row>& rows, const SelectionVector* sel);

  /// Produces the aggregate result. For empty input: COUNT-like functions
  /// return 0, the others NULL (SQL semantics).
  Value Finish() const;

  /// Folds another accumulator's partial state into this one — the merge
  /// step of the partitioned (thread-local build) parallel hash aggregate.
  /// Both accumulators must have been created for the same AggregateCall.
  /// DISTINCT states merge by set union (replaying only first-seen values);
  /// SINGLE_VALUE errors if both sides saw a row, matching what a serial
  /// pass over the union of their inputs would do.
  Status MergeFrom(const AggAccumulator& other);

 private:
  /// Applies one non-NULL (and, for DISTINCT, first-seen) value to the
  /// running state. Shared by Add and the DISTINCT merge path.
  Status AccumulateValue(const Value& v);

  const AggregateCall* call_;
  int64_t count_ = 0;
  double sum_double_ = 0;
  int64_t sum_int_ = 0;
  bool sum_is_double_ = false;
  Value min_;
  Value max_;
  Value single_;
  bool has_value_ = false;
  std::set<Value> distinct_values_;
};

/// Evaluates a full group: runs all `calls` over `rows` and appends results.
Status ComputeAggregates(const std::vector<AggregateCall>& calls,
                         const std::vector<Row>& rows, Row* out);

}  // namespace calcite

#endif  // CALCITE_ADAPTERS_ENUMERABLE_AGGREGATES_H_
