#include "adapters/enumerable/enumerable_rules.h"

#include "adapters/enumerable/enumerable_rels.h"
#include "rel/core.h"

namespace calcite {

namespace {

RelTraitSet EnumerableTraits() {
  return RelTraitSet(Convention::Enumerable());
}

bool IsLogical(const RelNode& node) {
  return node.convention() == Convention::Logical();
}

class EnumerableTableScanRule final : public ConverterRule {
 public:
  EnumerableTableScanRule()
      : ConverterRule(Convention::Logical(), Convention::Enumerable()) {}

  std::string name() const override { return "EnumerableTableScanRule"; }

  bool MatchesRoot(const RelNode& node) const override {
    if (!IsLogical(node)) return false;
    const auto* scan = dynamic_cast<const TableScan*>(&node);
    // Only tables natively stored client-side scan in the enumerable
    // convention; adapter-owned tables are scanned by their adapter's rule.
    return scan != nullptr &&
           scan->table_convention() == Convention::Enumerable();
  }

  void OnMatch(RelOptRuleCall* call) const override {
    const auto& scan = static_cast<const TableScan&>(*call->rel());
    call->TransformTo(EnumerableTableScan::Create(scan));
  }
};

class EnumerableFilterRule final : public ConverterRule {
 public:
  EnumerableFilterRule()
      : ConverterRule(Convention::Logical(), Convention::Enumerable()) {}

  std::string name() const override { return "EnumerableFilterRule"; }

  bool MatchesRoot(const RelNode& node) const override {
    return IsLogical(node) && dynamic_cast<const Filter*>(&node) != nullptr;
  }

  void OnMatch(RelOptRuleCall* call) const override {
    const auto& filter = static_cast<const Filter&>(*call->rel());
    RelNodePtr input = call->Convert(filter.input(0), EnumerableTraits());
    if (input == nullptr) return;
    call->TransformTo(
        EnumerableFilter::Create(std::move(input), filter.condition()));
  }
};

class EnumerableProjectRule final : public ConverterRule {
 public:
  EnumerableProjectRule()
      : ConverterRule(Convention::Logical(), Convention::Enumerable()) {}

  std::string name() const override { return "EnumerableProjectRule"; }

  bool MatchesRoot(const RelNode& node) const override {
    return IsLogical(node) && dynamic_cast<const Project*>(&node) != nullptr;
  }

  void OnMatch(RelOptRuleCall* call) const override {
    const auto& project = static_cast<const Project&>(*call->rel());
    RelNodePtr input = call->Convert(project.input(0), EnumerableTraits());
    if (input == nullptr) return;
    call->TransformTo(EnumerableProject::Create(std::move(input),
                                                project.exprs(),
                                                project.row_type()));
  }
};

class EnumerableJoinRule final : public ConverterRule {
 public:
  EnumerableJoinRule()
      : ConverterRule(Convention::Logical(), Convention::Enumerable()) {}

  std::string name() const override { return "EnumerableJoinRule"; }

  bool MatchesRoot(const RelNode& node) const override {
    return IsLogical(node) && dynamic_cast<const Join*>(&node) != nullptr;
  }

  void OnMatch(RelOptRuleCall* call) const override {
    const auto& join = static_cast<const Join&>(*call->rel());
    RelNodePtr left = call->Convert(join.input(0), EnumerableTraits());
    RelNodePtr right = call->Convert(join.input(1), EnumerableTraits());
    if (left == nullptr || right == nullptr) return;
    std::vector<std::pair<int, int>> keys;
    std::vector<RexNodePtr> remaining;
    if (join.AnalyzeEquiKeys(&keys, &remaining)) {
      call->TransformTo(EnumerableHashJoin::Create(
          left, right, join.condition(), join.join_type(), join.row_type()));
    }
    // The nested-loop alternative is always legal; the cost model discards
    // it when a hash join is available and cheaper.
    call->TransformTo(EnumerableNestedLoopJoin::Create(
        std::move(left), std::move(right), join.condition(), join.join_type(),
        join.row_type()));
  }
};

class EnumerableAggregateRule final : public ConverterRule {
 public:
  EnumerableAggregateRule()
      : ConverterRule(Convention::Logical(), Convention::Enumerable()) {}

  std::string name() const override { return "EnumerableAggregateRule"; }

  bool MatchesRoot(const RelNode& node) const override {
    return IsLogical(node) && dynamic_cast<const Aggregate*>(&node) != nullptr;
  }

  void OnMatch(RelOptRuleCall* call) const override {
    const auto& agg = static_cast<const Aggregate&>(*call->rel());
    RelNodePtr input = call->Convert(agg.input(0), EnumerableTraits());
    if (input == nullptr) return;
    call->TransformTo(EnumerableAggregate::Create(std::move(input),
                                                  agg.group_keys(),
                                                  agg.agg_calls(),
                                                  agg.row_type()));
  }
};

class EnumerableSortRule final : public ConverterRule {
 public:
  EnumerableSortRule()
      : ConverterRule(Convention::Logical(), Convention::Enumerable()) {}

  std::string name() const override { return "EnumerableSortRule"; }

  bool MatchesRoot(const RelNode& node) const override {
    return IsLogical(node) && dynamic_cast<const Sort*>(&node) != nullptr;
  }

  void OnMatch(RelOptRuleCall* call) const override {
    const auto& sort = static_cast<const Sort&>(*call->rel());
    RelNodePtr input = call->Convert(sort.input(0), EnumerableTraits());
    if (input == nullptr) return;
    call->TransformTo(EnumerableSort::Create(std::move(input),
                                             sort.collation(), sort.offset(),
                                             sort.fetch()));
    // If an input already provides the required ordering, the sort reduces
    // to pure OFFSET/FETCH (or disappears). Register that alternative too:
    // an input subset with the sort's collation as a required trait.
    if (!sort.collation().empty()) {
      RelNodePtr sorted_input = call->Convert(
          sort.input(0), RelTraitSet(Convention::Enumerable(),
                                     sort.collation()));
      if (sorted_input != nullptr) {
        if (sort.offset() == 0 && sort.fetch() < 0) {
          // Pure ORDER BY over an already-ordered input: the sort is
          // redundant (§4's sort-removal example). The subset placeholder
          // merges this operator's set with its input's set; the ordering
          // requirement survives as a trait demanded from the root.
          call->TransformTo(std::move(sorted_input));
        } else {
          call->TransformTo(EnumerableSort::Create(std::move(sorted_input),
                                                   sort.collation(),
                                                   sort.offset(),
                                                   sort.fetch()));
        }
      }
    }
  }
};

class EnumerableSetOpRule final : public ConverterRule {
 public:
  EnumerableSetOpRule()
      : ConverterRule(Convention::Logical(), Convention::Enumerable()) {}

  std::string name() const override { return "EnumerableSetOpRule"; }

  bool MatchesRoot(const RelNode& node) const override {
    return IsLogical(node) && dynamic_cast<const SetOp*>(&node) != nullptr;
  }

  void OnMatch(RelOptRuleCall* call) const override {
    const auto& setop = static_cast<const SetOp&>(*call->rel());
    std::vector<RelNodePtr> inputs;
    inputs.reserve(setop.inputs().size());
    for (const RelNodePtr& input : setop.inputs()) {
      RelNodePtr converted = call->Convert(input, EnumerableTraits());
      if (converted == nullptr) return;
      inputs.push_back(std::move(converted));
    }
    call->TransformTo(EnumerableSetOp::Create(std::move(inputs),
                                              setop.set_kind(), setop.all(),
                                              setop.row_type()));
  }
};

class EnumerableValuesRule final : public ConverterRule {
 public:
  EnumerableValuesRule()
      : ConverterRule(Convention::Logical(), Convention::Enumerable()) {}

  std::string name() const override { return "EnumerableValuesRule"; }

  bool MatchesRoot(const RelNode& node) const override {
    return IsLogical(node) && dynamic_cast<const Values*>(&node) != nullptr;
  }

  void OnMatch(RelOptRuleCall* call) const override {
    const auto& values = static_cast<const Values&>(*call->rel());
    call->TransformTo(
        EnumerableValues::Create(values.row_type(), values.tuples()));
  }
};

class EnumerableWindowRule final : public ConverterRule {
 public:
  EnumerableWindowRule()
      : ConverterRule(Convention::Logical(), Convention::Enumerable()) {}

  std::string name() const override { return "EnumerableWindowRule"; }

  bool MatchesRoot(const RelNode& node) const override {
    return IsLogical(node) && dynamic_cast<const Window*>(&node) != nullptr;
  }

  void OnMatch(RelOptRuleCall* call) const override {
    const auto& window = static_cast<const Window&>(*call->rel());
    RelNodePtr input = call->Convert(window.input(0), EnumerableTraits());
    if (input == nullptr) return;
    call->TransformTo(EnumerableWindow::Create(std::move(input),
                                               window.groups(),
                                               window.row_type()));
  }
};

class EnumerableInterpreterRule final : public ConverterRule {
 public:
  explicit EnumerableInterpreterRule(const Convention* foreign)
      : ConverterRule(foreign, Convention::Enumerable()) {}

  std::string name() const override {
    return "EnumerableInterpreterRule(" + from()->name() + ")";
  }

  bool MatchesRoot(const RelNode& node) const override {
    return node.convention() == from();
  }

  void OnMatch(RelOptRuleCall* call) const override {
    call->TransformTo(EnumerableInterpreter::Create(call->rel()));
  }
};

}  // namespace

std::vector<RelOptRulePtr> EnumerableConverterRules() {
  return {
      std::make_shared<EnumerableTableScanRule>(),
      std::make_shared<EnumerableFilterRule>(),
      std::make_shared<EnumerableProjectRule>(),
      std::make_shared<EnumerableJoinRule>(),
      std::make_shared<EnumerableAggregateRule>(),
      std::make_shared<EnumerableSortRule>(),
      std::make_shared<EnumerableSetOpRule>(),
      std::make_shared<EnumerableValuesRule>(),
      std::make_shared<EnumerableWindowRule>(),
  };
}

RelOptRulePtr MakeEnumerableInterpreterRule(const Convention* foreign) {
  return std::make_shared<EnumerableInterpreterRule>(foreign);
}

}  // namespace calcite
