#ifndef CALCITE_ADAPTERS_ENUMERABLE_COLUMNAR_AGG_H_
#define CALCITE_ADAPTERS_ENUMERABLE_COLUMNAR_AGG_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "adapters/enumerable/aggregates.h"
#include "exec/column_batch.h"
#include "rel/rel_node.h"
#include "type/value.h"
#include "util/status.h"

namespace calcite {

/// Columnar hash-aggregate state: consumes ColumnBatches straight off the
/// columnar hot path, resolving group ids and feeding the typed adders of
/// AggAccumulator without boxing non-NULL cells. Covers the global
/// (ungrouped) case and single-column group keys — wider keys stay on the
/// row path (TryCreate returns nullptr).
///
/// The produced groups match the row-path hash aggregate exactly: first-seen
/// key order, Value-equality group unification (Int(2) and Double(2.0) land
/// in the same group), NULLs form their own group, and accumulator state is
/// bit-for-bit what the per-row Add() calls would have built (the parity
/// suite enforces this).
class ColumnarAggBuilder {
 public:
  /// Returns a builder when the grouping shape is supported (zero or one
  /// group key), else nullptr. `calls` are copied; the builder is
  /// self-contained after construction.
  static std::unique_ptr<ColumnarAggBuilder> TryCreate(
      const std::vector<int>& group_keys,
      const std::vector<AggregateCall>& calls);

  ColumnarAggBuilder(const ColumnarAggBuilder&) = delete;
  ColumnarAggBuilder& operator=(const ColumnarAggBuilder&) = delete;

  /// Feeds the active rows of one batch.
  Status Feed(const ColumnBatch& batch);

  /// Folds another builder's groups into this one (parallel merge step).
  /// Both builders must have been created with the same keys and calls.
  Status MergeFrom(const ColumnarAggBuilder& other);

  /// Emits up to `batch_size` result rows (group key columns then one value
  /// per aggregate call, in first-seen group order). The first call
  /// finalizes: a global aggregate over empty input materializes its one
  /// row here. An empty batch means all groups have been emitted.
  RowBatch EmitBatch(size_t batch_size);

 private:
  ColumnarAggBuilder(std::vector<int> group_keys,
                     std::vector<AggregateCall> calls)
      : group_keys_(std::move(group_keys)), calls_(std::move(calls)) {}

  /// Appends a new group keyed by `key` and returns its id.
  uint32_t NewGroup(Value key);

  /// Group id for boxed key `key`, creating the group on first sight.
  uint32_t GroupIdForValue(const Value& key);

  /// Resolves the group id of every active row of `batch` into gids_.
  void ResolveGroups(const ColumnBatch& batch);

  /// Feeds call `call_idx` for every active row of `batch`, using the group
  /// ids already resolved into gids_.
  Status FeedCall(const ColumnBatch& batch, size_t call_idx);

  std::vector<int> group_keys_;  // empty (global) or exactly one index
  std::vector<AggregateCall> calls_;

  // Authoritative group table, keyed by boxed key value (Value hash/equality
  // unifies numerically-equal ints and doubles, and gives NULL one group).
  std::unordered_map<Value, uint32_t, ValueHash> group_index_;
  // Fast path for int64 key columns: raw int64 -> group id. Populated
  // lazily from the authoritative table so both stay consistent.
  std::unordered_map<int64_t, uint32_t> int_cache_;

  std::vector<Value> group_key_values_;         // per group, first-seen order
  std::vector<AggAccumulator> accs_;            // groups x calls, row-major
  std::vector<uint32_t> gids_;                  // per-Feed scratch
  size_t emit_pos_ = 0;
  bool finalized_ = false;
};

}  // namespace calcite

#endif  // CALCITE_ADAPTERS_ENUMERABLE_COLUMNAR_AGG_H_
