#ifndef CALCITE_ADAPTERS_ENUMERABLE_COLUMNAR_AGG_H_
#define CALCITE_ADAPTERS_ENUMERABLE_COLUMNAR_AGG_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "adapters/enumerable/aggregates.h"
#include "exec/column_batch.h"
#include "rel/rel_node.h"
#include "type/value.h"
#include "util/status.h"

namespace calcite {

/// Columnar hash-aggregate state: consumes ColumnBatches straight off the
/// columnar hot path, resolving group ids and feeding the typed adders of
/// AggAccumulator without boxing non-NULL cells. Covers the global
/// (ungrouped) case and single-column group keys — wider keys stay on the
/// row path (TryCreate returns nullptr).
///
/// The produced groups match the row-path hash aggregate exactly: first-seen
/// key order, Value-equality group unification (Int(2) and Double(2.0) land
/// in the same group), NULLs form their own group, and accumulator state is
/// bit-for-bit what the per-row Add() calls would have built (the parity
/// suite enforces this).
class ColumnarAggBuilder {
 public:
  /// Returns a builder when the grouping shape is supported (zero or one
  /// group key), else nullptr. `calls` are copied; the builder is
  /// self-contained after construction.
  static std::unique_ptr<ColumnarAggBuilder> TryCreate(
      const std::vector<int>& group_keys,
      const std::vector<AggregateCall>& calls);

  ColumnarAggBuilder(const ColumnarAggBuilder&) = delete;
  ColumnarAggBuilder& operator=(const ColumnarAggBuilder&) = delete;

  /// Feeds the active rows of one batch.
  Status Feed(const ColumnBatch& batch);

  /// Folds another builder's groups into this one (parallel merge step).
  /// Both builders must have been created with the same keys and calls.
  Status MergeFrom(const ColumnarAggBuilder& other);

  /// Emits up to `batch_size` result rows (group key columns then one value
  /// per aggregate call, in first-seen group order). The first call
  /// finalizes: a global aggregate over empty input materializes its one
  /// row here. An empty batch means all groups have been emitted.
  RowBatch EmitBatch(size_t batch_size);

 private:
  ColumnarAggBuilder(std::vector<int> group_keys,
                     std::vector<AggregateCall> calls)
      : group_keys_(std::move(group_keys)), calls_(std::move(calls)) {}

  /// Appends a new group keyed by `key` and returns its id.
  uint32_t NewGroup(Value key);

  /// Group id for boxed key `key`, creating the group on first sight.
  uint32_t GroupIdForValue(const Value& key);

  /// Probe-miss slow path: resolves cell `key[row]` through the
  /// authoritative boxed table, then fills the empty `slot` with
  /// (hash, raw-bit image, gid), growing the table when past the load
  /// factor. `raw`/`exact` are the probe loop's bit image of the cell;
  /// exactness is withdrawn here for NaN so a stored image never
  /// bit-matches a cell the boxed semantics would not group.
  uint32_t InsertHashed(const ColumnVector& key, size_t row, uint64_t hash,
                        uint64_t raw, bool exact, size_t slot);

  /// True when the raw cell `key[row]` equals group `gid`'s key under Value
  /// equality semantics (numeric cross-representation, string bytes).
  bool CellMatchesGroup(const ColumnVector& key, size_t row,
                        uint32_t gid) const;

  void RehashSlots();

  /// Resolves the group id of every active row of `batch` into gids_.
  void ResolveGroups(const ColumnBatch& batch);

  /// Feeds call `call_idx` for every active row of `batch`, using the group
  /// ids already resolved into gids_.
  Status FeedCall(const ColumnBatch& batch, size_t call_idx);

  std::vector<int> group_keys_;  // empty (global) or exactly one index
  std::vector<AggregateCall> calls_;

  // Authoritative group table, keyed by boxed key value (Value hash/equality
  // unifies numerically-equal ints and doubles, and gives NULL one group).
  std::unordered_map<Value, uint32_t, ValueHash> group_index_;

  // Fast path for typed key columns: a flat open-addressing table (linear
  // probing, power-of-two capacity, gid_plus_1 == 0 marks an empty slot)
  // probed with hashes precomputed for the whole batch by HashColumn.
  // Populated lazily from the authoritative table so both stay consistent;
  // HashColumn/HashValue64 agreeing on numerically-equal values is what
  // lets a raw double probe find a group opened by an int (and vice versa).
  // `raw`/`raw_type` carry the bit image of the cell that filled the slot:
  // a probe whose cell has the same physical type and identical bits can
  // accept without touching the boxed group key (the common case); any
  // mismatch — cross-representation int/double, +0.0 vs -0.0, strings,
  // slots marked inexact — falls back to CellMatchesGroup, so the fast
  // accept only ever short-circuits comparisons it cannot get wrong.
  struct HashSlot {
    uint64_t hash = 0;
    uint64_t raw = 0;
    uint32_t gid_plus_1 = 0;
    uint8_t raw_type = 0;  // PhysType of raw; kValue = no fast accept
  };
  std::vector<HashSlot> hash_slots_;
  size_t hash_count_ = 0;
  std::vector<uint64_t> hashes_;  // per-Feed scratch for HashColumn

  std::vector<Value> group_key_values_;         // per group, first-seen order
  std::vector<AggAccumulator> accs_;            // groups x calls, row-major
  std::vector<uint32_t> gids_;                  // per-Feed scratch
  size_t emit_pos_ = 0;
  bool finalized_ = false;
};

}  // namespace calcite

#endif  // CALCITE_ADAPTERS_ENUMERABLE_COLUMNAR_AGG_H_
