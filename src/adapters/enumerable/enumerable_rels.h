#ifndef CALCITE_ADAPTERS_ENUMERABLE_ENUMERABLE_RELS_H_
#define CALCITE_ADAPTERS_ENUMERABLE_ENUMERABLE_RELS_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "rel/core.h"
#include "rex/rex_util.h"  // ExtractScanPredicates (moved; kept for callers)

namespace calcite {

/// Physical operators of the *enumerable calling convention* (§5):
/// client-side operators that "simply operate over tuples via an iterator
/// interface", letting Calcite "implement operators which may not be
/// available in each adapter's backend". This is the framework's built-in
/// execution engine; every logical operator has an enumerable counterpart.

class EnumerableTableScan final : public TableScan {
 public:
  static RelNodePtr Create(const TableScan& scan);

  std::string op_name() const override { return "EnumerableTableScan"; }
  RelNodePtr Copy(RelTraitSet traits,
                  std::vector<RelNodePtr> inputs) const override;
  Result<std::vector<Row>> Execute() const override;
  Result<RowBatchPuller> ExecuteBatched(const ExecOptions& opts)
      const override;
  /// Zero-copy columnar scan over the table's cached column decomposition
  /// (when the table exposes one).
  std::optional<Result<ColumnBatchPuller>> TryExecuteColumnar(
      const ExecOptions& opts) const override;

 private:
  using TableScan::TableScan;
};

/// Filter with selection-vector pushdown: its native surface is
/// ExecuteSelBatched, which narrows each input batch's selection vector
/// instead of compacting it, and — when the input is a table scan — splits
/// the condition so that simple `column <op> literal` / NULL-test conjuncts
/// run inside the leaf scan before rows are materialized
/// (Table::ScanBatchedFiltered). ExecuteBatched is the compacting bridge
/// for consumers that need dense batches.
class EnumerableFilter final : public Filter {
 public:
  static RelNodePtr Create(RelNodePtr input, RexNodePtr condition);

  std::string op_name() const override { return "EnumerableFilter"; }
  RelNodePtr Copy(RelTraitSet traits,
                  std::vector<RelNodePtr> inputs) const override;
  Result<std::vector<Row>> Execute() const override;
  Result<RowBatchPuller> ExecuteBatched(const ExecOptions& opts)
      const override;
  Result<SelBatchPuller> ExecuteSelBatched(const ExecOptions& opts)
      const override;
  /// Columnar filter: pushes simple conjuncts into the columnar leaf scan
  /// (typed loops over raw column storage) and narrows each batch's
  /// selection vector with the columnar kernels for the residual — rows are
  /// never materialized, only the selection shrinks.
  std::optional<Result<ColumnBatchPuller>> TryExecuteColumnar(
      const ExecOptions& opts) const override;

 private:
  using Filter::Filter;
};

class EnumerableProject final : public Project {
 public:
  static RelNodePtr Create(RelNodePtr input, std::vector<RexNodePtr> exprs,
                           RelDataTypePtr row_type);

  std::string op_name() const override { return "EnumerableProject"; }
  RelNodePtr Copy(RelTraitSet traits,
                  std::vector<RelNodePtr> inputs) const override;
  Result<std::vector<Row>> Execute() const override;
  Result<RowBatchPuller> ExecuteBatched(const ExecOptions& opts)
      const override;
  /// Columnar projection: each expression becomes one dense output column
  /// computed by a fused typed kernel over the input's active rows
  /// (RexColumnar::AppendEvalColumn); input columns referenced verbatim are
  /// aliased, not copied, when no selection is in play.
  std::optional<Result<ColumnBatchPuller>> TryExecuteColumnar(
      const ExecOptions& opts) const override;

 private:
  using Project::Project;
};

/// Hash join over the equi-key part of the condition; any residual
/// non-equi conjuncts are evaluated on each matched pair. "The
/// EnumerableJoin operator implements joins by collecting rows from its
/// child nodes and joining on the desired attributes" (§5).
class EnumerableHashJoin final : public Join {
 public:
  static RelNodePtr Create(RelNodePtr left, RelNodePtr right,
                           RexNodePtr condition, JoinType join_type,
                           RelDataTypePtr row_type);

  std::string op_name() const override { return "EnumerableHashJoin"; }
  RelNodePtr Copy(RelTraitSet traits,
                  std::vector<RelNodePtr> inputs) const override;
  Result<std::vector<Row>> Execute() const override;
  Result<RowBatchPuller> ExecuteBatched(const ExecOptions& opts)
      const override;

 private:
  using Join::Join;
};

/// Fallback join for arbitrary (non-equi) conditions.
class EnumerableNestedLoopJoin final : public Join {
 public:
  static RelNodePtr Create(RelNodePtr left, RelNodePtr right,
                           RexNodePtr condition, JoinType join_type,
                           RelDataTypePtr row_type);

  std::string op_name() const override { return "EnumerableNestedLoopJoin"; }
  RelNodePtr Copy(RelTraitSet traits,
                  std::vector<RelNodePtr> inputs) const override;
  Result<std::vector<Row>> Execute() const override;
  Result<RowBatchPuller> ExecuteBatched(const ExecOptions& opts)
      const override;

  std::optional<RelOptCost> SelfCost(MetadataQuery* mq) const override;

 private:
  using Join::Join;
};

class EnumerableAggregate final : public Aggregate {
 public:
  static RelNodePtr Create(RelNodePtr input, std::vector<int> group_keys,
                           std::vector<AggregateCall> agg_calls,
                           RelDataTypePtr row_type);

  std::string op_name() const override { return "EnumerableAggregate"; }
  RelNodePtr Copy(RelTraitSet traits,
                  std::vector<RelNodePtr> inputs) const override;
  Result<std::vector<Row>> Execute() const override;
  Result<RowBatchPuller> ExecuteBatched(const ExecOptions& opts)
      const override;

 private:
  using Aggregate::Aggregate;
};

/// Sort + OFFSET/FETCH. Its trait set carries the produced collation, which
/// is how already-sorted inputs make the sort redundant (§4's sort-removal
/// example operates through subset membership in the cost-based planner).
class EnumerableSort final : public Sort {
 public:
  static RelNodePtr Create(RelNodePtr input, RelCollation collation,
                           int64_t offset, int64_t fetch);

  std::string op_name() const override { return "EnumerableSort"; }
  RelNodePtr Copy(RelTraitSet traits,
                  std::vector<RelNodePtr> inputs) const override;
  Result<std::vector<Row>> Execute() const override;
  Result<RowBatchPuller> ExecuteBatched(const ExecOptions& opts)
      const override;

 private:
  using Sort::Sort;
};

class EnumerableSetOp final : public SetOp {
 public:
  static RelNodePtr Create(std::vector<RelNodePtr> inputs, Kind kind, bool all,
                           RelDataTypePtr row_type);

  std::string op_name() const override;
  RelNodePtr Copy(RelTraitSet traits,
                  std::vector<RelNodePtr> inputs) const override;
  Result<std::vector<Row>> Execute() const override;
  Result<RowBatchPuller> ExecuteBatched(const ExecOptions& opts)
      const override;

 private:
  using SetOp::SetOp;
};

class EnumerableValues final : public Values {
 public:
  static RelNodePtr Create(RelDataTypePtr row_type, std::vector<Row> tuples);

  std::string op_name() const override { return "EnumerableValues"; }
  RelNodePtr Copy(RelTraitSet traits,
                  std::vector<RelNodePtr> inputs) const override;
  Result<std::vector<Row>> Execute() const override;
  Result<RowBatchPuller> ExecuteBatched(const ExecOptions& opts)
      const override;

 private:
  using Values::Values;
};

class EnumerableWindow final : public Window {
 public:
  static RelNodePtr Create(RelNodePtr input, std::vector<WindowGroup> groups,
                           RelDataTypePtr row_type);

  std::string op_name() const override { return "EnumerableWindow"; }
  RelNodePtr Copy(RelTraitSet traits,
                  std::vector<RelNodePtr> inputs) const override;
  Result<std::vector<Row>> Execute() const override;
  Result<RowBatchPuller> ExecuteBatched(const ExecOptions& opts)
      const override;

 private:
  using Window::Window;
};

/// Bridges a foreign calling convention into the enumerable convention: it
/// executes its input inside the adapter's engine and exposes the resulting
/// rows through the iterator interface. The metadata cost model charges it a
/// per-row transfer cost, which is what makes pushing operations *into*
/// backends profitable (Figure 2).
class EnumerableInterpreter final : public Converter {
 public:
  static RelNodePtr Create(RelNodePtr input);

  std::string op_name() const override { return "EnumerableInterpreter"; }
  RelNodePtr Copy(RelTraitSet traits,
                  std::vector<RelNodePtr> inputs) const override;
  Result<std::vector<Row>> Execute() const override;
  Result<RowBatchPuller> ExecuteBatched(const ExecOptions& opts)
      const override;

 private:
  using Converter::Converter;
};

/// Builds the concatenated row of a join result (left fields then right
/// fields), padding the missing side with NULLs for outer joins.
Row ConcatRows(const Row& left, const Row& right);
Row PadNullRight(const Row& left, size_t right_width);
Row PadNullLeft(size_t left_width, const Row& right);

/// Batch-granularity operator kernels, shared by the serial pull pipelines
/// above and the morsel-driven parallel executor (exec/parallel/): a single
/// implementation of filter/project semantics, whichever thread runs it.
/// Filter semantics live in RexInterpreter::NarrowSelection (selection
/// narrowing); the project kernel below consumes the selection.
///
/// Projects the *selected* rows of `batch` in place. Projection writes one
/// fresh output row per live input row, so it compacts as a side effect:
/// on return the batch is dense (has_sel false) with ActiveCount() rows.
Status ApplyProjectToSelBatch(const std::vector<RexNodePtr>& exprs,
                              SelBatch* batch);

/// Join runtime helpers shared by the serial joins and the parallel
/// partitioned hash join.
///
/// The join key of `row` under one side of the equi-key list, or nullopt
/// if any key column is NULL (NULL keys never match).
std::optional<Row> JoinSideKey(const Row& row,
                               const std::vector<std::pair<int, int>>& keys,
                               bool left_side);
/// True for the join types that emit the concatenated row per match
/// (SEMI/ANTI decide emission per left row instead).
bool JoinEmitsCombinedRows(JoinType join_type);
/// Emission decided once per probed left row, after its matches ran.
void JoinEmitPerLeftRow(JoinType join_type, bool matched, Row&& lrow,
                        size_t right_width, RowBatch* out);

}  // namespace calcite

#endif  // CALCITE_ADAPTERS_ENUMERABLE_ENUMERABLE_RELS_H_
