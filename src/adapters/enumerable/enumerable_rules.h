#ifndef CALCITE_ADAPTERS_ENUMERABLE_ENUMERABLE_RULES_H_
#define CALCITE_ADAPTERS_ENUMERABLE_ENUMERABLE_RULES_H_

#include <vector>

#include "plan/rule.h"

namespace calcite {

/// The converter rules that implement every logical operator in the
/// enumerable calling convention. Registering these with the cost-based
/// planner is what makes a logical plan executable client-side (§5).
std::vector<RelOptRulePtr> EnumerableConverterRules();

/// A rule that bridges expressions of `foreign` convention into the
/// enumerable convention through an EnumerableInterpreter node. One instance
/// is registered per adapter convention in use.
RelOptRulePtr MakeEnumerableInterpreterRule(const Convention* foreign);

}  // namespace calcite

#endif  // CALCITE_ADAPTERS_ENUMERABLE_ENUMERABLE_RULES_H_
