#include "adapters/enumerable/columnar_agg.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>

namespace calcite {

namespace {
constexpr size_t kInitialHashSlots = 64;  // power of two

// Rows hashed per HashColumn block: large enough to amortize the kernel
// dispatch, small enough that the 8-byte-per-row hash scratch (32 KiB)
// stays cache-resident instead of evicting the key/argument columns on
// oversized batches.
constexpr size_t kHashBlockRows = 4096;

// `col` shifted forward by `base` rows (pointer-advance view; the result
// must not outlive `col`'s storage).
ColumnVector ShiftColumn(const ColumnVector& col, size_t base) {
  ColumnVector v = col;
  if (v.i64 != nullptr) v.i64 += base;
  if (v.f64 != nullptr) v.f64 += base;
  if (v.b8 != nullptr) v.b8 += base;
  if (v.str != nullptr) v.str += base;
  if (v.boxed != nullptr) v.boxed += base;
  if (v.nulls != nullptr) v.nulls += base;
  return v;
}
}  // namespace

std::unique_ptr<ColumnarAggBuilder> ColumnarAggBuilder::TryCreate(
    const std::vector<int>& group_keys,
    const std::vector<AggregateCall>& calls) {
  if (group_keys.size() > 1) return nullptr;
  return std::unique_ptr<ColumnarAggBuilder>(
      new ColumnarAggBuilder(group_keys, calls));
}

uint32_t ColumnarAggBuilder::NewGroup(Value key) {
  uint32_t gid = static_cast<uint32_t>(group_key_values_.size());
  group_key_values_.push_back(std::move(key));
  accs_.reserve(accs_.size() + calls_.size());
  for (const AggregateCall& call : calls_) {
    accs_.emplace_back(call);
  }
  return gid;
}

uint32_t ColumnarAggBuilder::GroupIdForValue(const Value& key) {
  auto it = group_index_.find(key);
  if (it != group_index_.end()) return it->second;
  uint32_t gid = NewGroup(key);
  group_index_.emplace(key, gid);
  return gid;
}

bool ColumnarAggBuilder::CellMatchesGroup(const ColumnVector& key, size_t row,
                                          uint32_t gid) const {
  const Value& v = group_key_values_[gid];
  switch (key.type) {
    case PhysType::kInt64: {
      // Mirrors Value::Compare: int-int exact, cross-representation as
      // double (so a raw 2 matches a group opened by Double(2.0)).
      const int64_t c = key.i64[row];
      if (v.is_int()) return v.AsInt() == c;
      return v.is_double() && v.AsDouble() == static_cast<double>(c);
    }
    case PhysType::kDouble:
      return v.is_numeric() && v.AsDouble() == key.f64[row];
    case PhysType::kString:
      return v.is_string() &&
             std::string_view(v.AsString()) == key.str[row].view();
    case PhysType::kBool:
      return v.is_bool() && v.AsBool() == (key.b8[row] != 0);
    case PhysType::kValue:
      break;
  }
  return false;
}

void ColumnarAggBuilder::RehashSlots() {
  std::vector<HashSlot> old;
  old.swap(hash_slots_);
  hash_slots_.resize(old.size() * 2);
  const size_t mask = hash_slots_.size() - 1;
  for (const HashSlot& s : old) {
    if (s.gid_plus_1 == 0) continue;
    size_t slot = static_cast<size_t>(s.hash) & mask;
    while (hash_slots_[slot].gid_plus_1 != 0) slot = (slot + 1) & mask;
    hash_slots_[slot] = s;
  }
}

uint32_t ColumnarAggBuilder::InsertHashed(const ColumnVector& key, size_t row,
                                          uint64_t hash, uint64_t raw,
                                          bool exact, size_t slot) {
  // NaN never equals itself under the boxed semantics, so a stored NaN bit
  // image must not fast-accept later NaN cells into this group.
  if (key.type == PhysType::kDouble && key.f64[row] != key.f64[row]) {
    exact = false;
  }
  const uint32_t gid = GroupIdForValue(key.GetValue(row));
  HashSlot& s = hash_slots_[slot];
  s.hash = hash;
  s.raw = raw;
  s.raw_type = static_cast<uint8_t>(exact ? key.type : PhysType::kValue);
  s.gid_plus_1 = gid + 1;
  if (++hash_count_ * 10 >= hash_slots_.size() * 7) RehashSlots();
  return gid;
}

void ColumnarAggBuilder::ResolveGroups(const ColumnBatch& batch) {
  const size_t active = batch.ActiveCount();
  gids_.clear();
  gids_.reserve(active);
  if (group_keys_.empty()) {
    if (group_key_values_.empty()) NewGroup(Value::Null());
    gids_.assign(active, 0);
    return;
  }
  const ColumnVector& key = batch.cols[static_cast<size_t>(group_keys_[0])];
  // The flat table verifies probes against group_key_values_, which EmitBatch
  // moves out of — after finalization only the boxed path is trustworthy
  // (Feed after Emit does not happen on the hot path anyway).
  if (key.type != PhysType::kValue && !finalized_) {
    // Blocked hashing: hash kHashBlockRows keys column-at-a-time, then
    // resolve those rows off their precomputed hashes, and repeat. The
    // block bound keeps the hash scratch cache-resident even when a batch
    // is far larger than the usual 1024 rows. The probe loop lives here
    // (not in a per-row helper) so the hot path — slot load, hash compare,
    // raw-bit accept — stays inline; only misses leave it.
    if (hash_slots_.empty()) hash_slots_.resize(kInitialHashSlots);
    gids_.resize(active);
    hashes_.resize(std::min(active, kHashBlockRows));
    const PhysType kt = key.type;
    const uint8_t kt8 = static_cast<uint8_t>(kt);
    const uint32_t* sel = batch.has_sel ? batch.sel.data() : nullptr;
    const uint8_t* nulls = key.nulls;
    const uint64_t* hashes = hashes_.data();
    uint32_t* gids = gids_.data();
    // Locals instead of member accesses: the out-of-line calls on the miss
    // path would otherwise force the compiler to reload pointer/mask every
    // row. InsertHashed can grow the table, so both refresh after it.
    const HashSlot* slots = hash_slots_.data();
    size_t mask = hash_slots_.size() - 1;
    for (size_t base = 0; base < active; base += kHashBlockRows) {
      const size_t block = std::min(kHashBlockRows, active - base);
      if (sel != nullptr) {
        HashColumn(key, sel + base, block, hashes_.data());
      } else {
        const ColumnVector view = ShiftColumn(key, base);
        HashColumn(view, nullptr, block, hashes_.data());
      }
      for (size_t j = 0; j < block; ++j) {
        const size_t k = base + j;
        const size_t i = sel != nullptr ? sel[k] : k;
        if (nulls != nullptr && nulls[i] != 0) {
          gids[k] = GroupIdForValue(Value::Null());
          continue;
        }
        uint64_t bits = 0;
        bool exact = true;
        switch (kt) {
          case PhysType::kInt64:
            bits = static_cast<uint64_t>(key.i64[i]);
            break;
          case PhysType::kDouble: {
            const double d = key.f64[i];
            std::memcpy(&bits, &d, sizeof(bits));
            break;
          }
          case PhysType::kBool:
            bits = key.b8[i] != 0 ? 1 : 0;
            break;
          default:
            exact = false;  // strings verify through CellMatchesGroup
            break;
        }
        const uint64_t h = hashes[j];
        size_t slot = static_cast<size_t>(h) & mask;
        uint32_t gid;
        for (;;) {
          const HashSlot& s = slots[slot];
          if (s.gid_plus_1 == 0) {
            gid = InsertHashed(key, i, h, bits, exact, slot);
            slots = hash_slots_.data();
            mask = hash_slots_.size() - 1;
            break;
          }
          if (s.hash == h &&
              ((exact && s.raw_type == kt8 && s.raw == bits) ||
               CellMatchesGroup(key, i, s.gid_plus_1 - 1))) {
            gid = s.gid_plus_1 - 1;
            break;
          }
          slot = (slot + 1) & mask;
        }
        gids[k] = gid;
      }
    }
    return;
  }
  for (size_t k = 0; k < active; ++k) {
    gids_.push_back(GroupIdForValue(key.GetValue(batch.ActiveIndex(k))));
  }
}

Status ColumnarAggBuilder::FeedCall(const ColumnBatch& batch,
                                    size_t call_idx) {
  const AggregateCall& call = calls_[call_idx];
  const size_t stride = calls_.size();
  const size_t active = batch.ActiveCount();

  if (call.kind == AggKind::kCountStar) {
    if (group_keys_.empty()) {
      accs_[call_idx].AddCountStarN(static_cast<int64_t>(active));
    } else {
      for (size_t k = 0; k < active; ++k) {
        accs_[gids_[k] * stride + call_idx].AddCountStarN(1);
      }
    }
    return Status::OK();
  }
  if (call.args.empty()) {
    return Status::RuntimeError("aggregate " + call.ToString() +
                                " has no argument");
  }
  const int arg = call.args[0];
  if (arg < 0 || static_cast<size_t>(arg) >= batch.cols.size()) {
    return Status::RuntimeError("aggregate argument $" + std::to_string(arg) +
                                " out of range");
  }
  const ColumnVector& col = batch.cols[static_cast<size_t>(arg)];
  auto acc = [&](size_t k) -> AggAccumulator& {
    return accs_[gids_[k] * stride + call_idx];
  };

  // DISTINCT dedups on the boxed value, so it always takes the boxed path.
  if (call.distinct || col.type == PhysType::kValue) {
    for (size_t k = 0; k < active; ++k) {
      const size_t i = batch.ActiveIndex(k);
      if (col.IsNullAt(i)) continue;  // SQL aggregates ignore NULLs.
      CALCITE_RETURN_IF_ERROR(acc(k).AddNonNullValue(col.GetValue(i)));
    }
    return Status::OK();
  }
  switch (col.type) {
    case PhysType::kInt64:
      for (size_t k = 0; k < active; ++k) {
        const size_t i = batch.ActiveIndex(k);
        if (col.nulls != nullptr && col.nulls[i] != 0) continue;
        CALCITE_RETURN_IF_ERROR(acc(k).AddNonNullInt64(col.i64[i]));
      }
      return Status::OK();
    case PhysType::kDouble:
      for (size_t k = 0; k < active; ++k) {
        const size_t i = batch.ActiveIndex(k);
        if (col.nulls != nullptr && col.nulls[i] != 0) continue;
        CALCITE_RETURN_IF_ERROR(acc(k).AddNonNullDouble(col.f64[i]));
      }
      return Status::OK();
    case PhysType::kString:
      for (size_t k = 0; k < active; ++k) {
        const size_t i = batch.ActiveIndex(k);
        if (col.nulls != nullptr && col.nulls[i] != 0) continue;
        CALCITE_RETURN_IF_ERROR(acc(k).AddNonNullStringView(col.str[i].view()));
      }
      return Status::OK();
    case PhysType::kBool:
      for (size_t k = 0; k < active; ++k) {
        const size_t i = batch.ActiveIndex(k);
        if (col.nulls != nullptr && col.nulls[i] != 0) continue;
        CALCITE_RETURN_IF_ERROR(
            acc(k).AddNonNullValue(Value::Bool(col.b8[i] != 0)));
      }
      return Status::OK();
    case PhysType::kValue:
      break;  // handled above
  }
  return Status::OK();
}

Status ColumnarAggBuilder::Feed(const ColumnBatch& batch) {
  ResolveGroups(batch);
  for (size_t j = 0; j < calls_.size(); ++j) {
    CALCITE_RETURN_IF_ERROR(FeedCall(batch, j));
  }
  return Status::OK();
}

Status ColumnarAggBuilder::MergeFrom(const ColumnarAggBuilder& other) {
  const size_t stride = calls_.size();
  for (size_t og = 0; og < other.group_key_values_.size(); ++og) {
    uint32_t gid;
    if (group_keys_.empty()) {
      if (group_key_values_.empty()) NewGroup(Value::Null());
      gid = 0;
    } else {
      gid = GroupIdForValue(other.group_key_values_[og]);
    }
    for (size_t j = 0; j < stride; ++j) {
      CALCITE_RETURN_IF_ERROR(
          accs_[gid * stride + j].MergeFrom(other.accs_[og * stride + j]));
    }
  }
  return Status::OK();
}

RowBatch ColumnarAggBuilder::EmitBatch(size_t batch_size) {
  if (!finalized_) {
    // Global aggregate over empty input still produces one row.
    if (group_keys_.empty() && group_key_values_.empty()) {
      NewGroup(Value::Null());
    }
    finalized_ = true;
  }
  const size_t stride = calls_.size();
  RowBatch out;
  while (emit_pos_ < group_key_values_.size() && out.size() < batch_size) {
    const size_t g = emit_pos_++;
    Row result;
    result.reserve(group_keys_.size() + stride);
    if (!group_keys_.empty()) {
      result.push_back(std::move(group_key_values_[g]));
    }
    for (size_t j = 0; j < stride; ++j) {
      result.push_back(accs_[g * stride + j].Finish());
    }
    out.push_back(std::move(result));
  }
  return out;
}

}  // namespace calcite
