#include "adapters/enumerable/columnar_agg.h"

#include <string>
#include <utility>

namespace calcite {

std::unique_ptr<ColumnarAggBuilder> ColumnarAggBuilder::TryCreate(
    const std::vector<int>& group_keys,
    const std::vector<AggregateCall>& calls) {
  if (group_keys.size() > 1) return nullptr;
  return std::unique_ptr<ColumnarAggBuilder>(
      new ColumnarAggBuilder(group_keys, calls));
}

uint32_t ColumnarAggBuilder::NewGroup(Value key) {
  uint32_t gid = static_cast<uint32_t>(group_key_values_.size());
  group_key_values_.push_back(std::move(key));
  accs_.reserve(accs_.size() + calls_.size());
  for (const AggregateCall& call : calls_) {
    accs_.emplace_back(call);
  }
  return gid;
}

uint32_t ColumnarAggBuilder::GroupIdForValue(const Value& key) {
  auto it = group_index_.find(key);
  if (it != group_index_.end()) return it->second;
  uint32_t gid = NewGroup(key);
  group_index_.emplace(key, gid);
  return gid;
}

void ColumnarAggBuilder::ResolveGroups(const ColumnBatch& batch) {
  const size_t active = batch.ActiveCount();
  gids_.clear();
  gids_.reserve(active);
  if (group_keys_.empty()) {
    if (group_key_values_.empty()) NewGroup(Value::Null());
    gids_.assign(active, 0);
    return;
  }
  const ColumnVector& key = batch.cols[static_cast<size_t>(group_keys_[0])];
  if (key.type == PhysType::kInt64) {
    // Raw-int probe first; the boxed table stays authoritative so an
    // Int(2) group opened here still unifies with a later Double(2.0).
    for (size_t k = 0; k < active; ++k) {
      const size_t i = batch.ActiveIndex(k);
      if (key.nulls != nullptr && key.nulls[i] != 0) {
        gids_.push_back(GroupIdForValue(Value::Null()));
        continue;
      }
      const int64_t raw = key.i64[i];
      auto it = int_cache_.find(raw);
      if (it != int_cache_.end()) {
        gids_.push_back(it->second);
        continue;
      }
      uint32_t gid = GroupIdForValue(Value::Int(raw));
      int_cache_.emplace(raw, gid);
      gids_.push_back(gid);
    }
    return;
  }
  for (size_t k = 0; k < active; ++k) {
    gids_.push_back(GroupIdForValue(key.GetValue(batch.ActiveIndex(k))));
  }
}

Status ColumnarAggBuilder::FeedCall(const ColumnBatch& batch,
                                    size_t call_idx) {
  const AggregateCall& call = calls_[call_idx];
  const size_t stride = calls_.size();
  const size_t active = batch.ActiveCount();

  if (call.kind == AggKind::kCountStar) {
    if (group_keys_.empty()) {
      accs_[call_idx].AddCountStarN(static_cast<int64_t>(active));
    } else {
      for (size_t k = 0; k < active; ++k) {
        accs_[gids_[k] * stride + call_idx].AddCountStarN(1);
      }
    }
    return Status::OK();
  }
  if (call.args.empty()) {
    return Status::RuntimeError("aggregate " + call.ToString() +
                                " has no argument");
  }
  const int arg = call.args[0];
  if (arg < 0 || static_cast<size_t>(arg) >= batch.cols.size()) {
    return Status::RuntimeError("aggregate argument $" + std::to_string(arg) +
                                " out of range");
  }
  const ColumnVector& col = batch.cols[static_cast<size_t>(arg)];
  auto acc = [&](size_t k) -> AggAccumulator& {
    return accs_[gids_[k] * stride + call_idx];
  };

  // DISTINCT dedups on the boxed value, so it always takes the boxed path.
  if (call.distinct || col.type == PhysType::kValue) {
    for (size_t k = 0; k < active; ++k) {
      const size_t i = batch.ActiveIndex(k);
      if (col.IsNullAt(i)) continue;  // SQL aggregates ignore NULLs.
      CALCITE_RETURN_IF_ERROR(acc(k).AddNonNullValue(col.GetValue(i)));
    }
    return Status::OK();
  }
  switch (col.type) {
    case PhysType::kInt64:
      for (size_t k = 0; k < active; ++k) {
        const size_t i = batch.ActiveIndex(k);
        if (col.nulls != nullptr && col.nulls[i] != 0) continue;
        CALCITE_RETURN_IF_ERROR(acc(k).AddNonNullInt64(col.i64[i]));
      }
      return Status::OK();
    case PhysType::kDouble:
      for (size_t k = 0; k < active; ++k) {
        const size_t i = batch.ActiveIndex(k);
        if (col.nulls != nullptr && col.nulls[i] != 0) continue;
        CALCITE_RETURN_IF_ERROR(acc(k).AddNonNullDouble(col.f64[i]));
      }
      return Status::OK();
    case PhysType::kString:
      for (size_t k = 0; k < active; ++k) {
        const size_t i = batch.ActiveIndex(k);
        if (col.nulls != nullptr && col.nulls[i] != 0) continue;
        CALCITE_RETURN_IF_ERROR(acc(k).AddNonNullStringView(col.str[i].view()));
      }
      return Status::OK();
    case PhysType::kBool:
      for (size_t k = 0; k < active; ++k) {
        const size_t i = batch.ActiveIndex(k);
        if (col.nulls != nullptr && col.nulls[i] != 0) continue;
        CALCITE_RETURN_IF_ERROR(
            acc(k).AddNonNullValue(Value::Bool(col.b8[i] != 0)));
      }
      return Status::OK();
    case PhysType::kValue:
      break;  // handled above
  }
  return Status::OK();
}

Status ColumnarAggBuilder::Feed(const ColumnBatch& batch) {
  ResolveGroups(batch);
  for (size_t j = 0; j < calls_.size(); ++j) {
    CALCITE_RETURN_IF_ERROR(FeedCall(batch, j));
  }
  return Status::OK();
}

Status ColumnarAggBuilder::MergeFrom(const ColumnarAggBuilder& other) {
  const size_t stride = calls_.size();
  for (size_t og = 0; og < other.group_key_values_.size(); ++og) {
    uint32_t gid;
    if (group_keys_.empty()) {
      if (group_key_values_.empty()) NewGroup(Value::Null());
      gid = 0;
    } else {
      gid = GroupIdForValue(other.group_key_values_[og]);
    }
    for (size_t j = 0; j < stride; ++j) {
      CALCITE_RETURN_IF_ERROR(
          accs_[gid * stride + j].MergeFrom(other.accs_[og * stride + j]));
    }
  }
  return Status::OK();
}

RowBatch ColumnarAggBuilder::EmitBatch(size_t batch_size) {
  if (!finalized_) {
    // Global aggregate over empty input still produces one row.
    if (group_keys_.empty() && group_key_values_.empty()) {
      NewGroup(Value::Null());
    }
    finalized_ = true;
  }
  const size_t stride = calls_.size();
  RowBatch out;
  while (emit_pos_ < group_key_values_.size() && out.size() < batch_size) {
    const size_t g = emit_pos_++;
    Row result;
    result.reserve(group_keys_.size() + stride);
    if (!group_keys_.empty()) {
      result.push_back(std::move(group_key_values_[g]));
    }
    for (size_t j = 0; j < stride; ++j) {
      result.push_back(accs_[g * stride + j].Finish());
    }
    out.push_back(std::move(result));
  }
  return out;
}

}  // namespace calcite
