#ifndef CALCITE_METADATA_TABLE_STATS_PROVIDER_H_
#define CALCITE_METADATA_TABLE_STATS_PROVIDER_H_

#include "metadata/metadata.h"

namespace calcite {

/// The statistics-backed metadata provider (§6): turns ANALYZE results
/// (schema/analyze.h) into selectivity estimates, replacing the fixed
/// default guesses whenever the predicate's table has per-column stats.
///
/// It answers Selectivity only for predicates evaluated directly against a
/// TableScan whose table reports analyzed() stats — exactly the situation
/// where the filter's conjuncts reference physical columns, so the pushed
/// shapes ExtractScanPredicates recognizes ($col <op> literal, IS [NOT]
/// NULL, conjunctions thereof) can be scored against those columns'
/// histograms/NDV/null fraction. Residual conjuncts (expressions the stats
/// cannot see) recurse through the MetadataQuery, where this provider
/// declines again — by construction a residual conjunct extracts nothing —
/// and the built-in guesses take over for just that factor.
///
/// Registered by the MetadataQuery constructor itself, so every planner
/// (VolcanoPlanner costing via PlannerContext, direct MetadataQuery users)
/// sees stats without wiring; later AddProvider registrations still take
/// precedence.
class TableStatsProvider : public MetadataProvider {
 public:
  std::optional<double> Selectivity(const RelNodePtr& node,
                                    const RexNodePtr& predicate,
                                    MetadataQuery* mq) override;
};

}  // namespace calcite

#endif  // CALCITE_METADATA_TABLE_STATS_PROVIDER_H_
