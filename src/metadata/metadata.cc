#include "metadata/metadata.h"

#include <algorithm>
#include <cmath>

#include "metadata/table_stats_provider.h"
#include "rel/core.h"
#include "rex/rex_util.h"

namespace calcite {

namespace {

/// Fallback row count when a table provides no statistics.
constexpr double kDefaultTableRows = 100.0;

}  // namespace

MetadataQuery::MetadataQuery() {
  AddProvider(std::make_shared<TableStatsProvider>());
}

void MetadataQuery::AddProvider(std::shared_ptr<MetadataProvider> provider) {
  providers_.push_back(std::move(provider));
}

void MetadataQuery::SetCacheEnabled(bool enabled) {
  cache_enabled_ = enabled;
  ClearCache();
}

void MetadataQuery::ClearCache() {
  row_count_cache_.clear();
  cost_cache_.clear();
  cumulative_cost_cache_.clear();
  selectivity_cache_.clear();
  unique_cache_.clear();
  row_size_cache_.clear();
}

double MetadataQuery::RowCount(const RelNodePtr& node) {
  if (cache_enabled_) {
    auto it = row_count_cache_.find(node.get());
    if (it != row_count_cache_.end()) return it->second;
  }
  double result = ComputeRowCount(node);
  if (cache_enabled_) row_count_cache_[node.get()] = result;
  return result;
}

double MetadataQuery::ComputeRowCount(const RelNodePtr& node) {
  ++computation_count_;
  // Custom providers take precedence (most recently added first).
  for (auto it = providers_.rbegin(); it != providers_.rend(); ++it) {
    if (auto v = (*it)->RowCount(node, this)) return *v;
  }
  // Node-level override (adapter nodes, planner subsets, table stats).
  if (auto v = node->SelfRowCount(this)) return *v;

  if (const auto* scan = dynamic_cast<const TableScan*>(node.get())) {
    return scan->table()->GetStatistic().row_count.value_or(kDefaultTableRows);
  }
  if (const auto* filter = dynamic_cast<const Filter*>(node.get())) {
    return RowCount(node->input(0)) *
           Selectivity(node->input(0), filter->condition());
  }
  if (dynamic_cast<const Project*>(node.get()) != nullptr) {
    return RowCount(node->input(0));
  }
  if (const auto* join = dynamic_cast<const Join*>(node.get())) {
    double left = RowCount(node->input(0));
    double right = RowCount(node->input(1));
    double sel = Selectivity(node, join->condition());
    std::vector<std::pair<int, int>> keys;
    std::vector<RexNodePtr> remaining;
    if (join->AnalyzeEquiKeys(&keys, &remaining)) {
      // Equi-join estimate: each left row matches right/ndv rows; with a
      // unique right key this is a lookup join of size <= left.
      std::vector<int> right_cols;
      right_cols.reserve(keys.size());
      for (const auto& [l, r] : keys) right_cols.push_back(r);
      double base;
      if (AreColumnsUnique(node->input(1), right_cols)) {
        base = left;
      } else {
        base = left * right / std::max(1.0, std::sqrt(right));
      }
      double remaining_sel = 1.0;
      for (const RexNodePtr& pred : remaining) {
        remaining_sel *= Selectivity(node, pred);
      }
      double rows = base * remaining_sel;
      if (join->join_type() == JoinType::kLeft ||
          join->join_type() == JoinType::kFull) {
        rows = std::max(rows, left);
      }
      if (join->join_type() == JoinType::kRight ||
          join->join_type() == JoinType::kFull) {
        rows = std::max(rows, right);
      }
      if (join->join_type() == JoinType::kSemi ||
          join->join_type() == JoinType::kAnti) {
        rows = std::min(rows, left);
      }
      return std::max(1.0, rows);
    }
    return std::max(1.0, left * right * sel);
  }
  if (const auto* agg = dynamic_cast<const Aggregate*>(node.get())) {
    if (agg->group_keys().empty()) return 1.0;
    double input = RowCount(node->input(0));
    if (AreColumnsUnique(node->input(0), agg->group_keys())) return input;
    // Heuristic: grouping reduces cardinality; more keys retain more groups.
    double fraction =
        1.0 - std::pow(0.5, static_cast<double>(agg->group_keys().size()));
    return std::max(1.0, input * fraction);
  }
  if (const auto* sort = dynamic_cast<const Sort*>(node.get())) {
    double input = RowCount(node->input(0));
    if (sort->offset() > 0) {
      input = std::max(0.0, input - static_cast<double>(sort->offset()));
    }
    if (sort->fetch() >= 0) {
      input = std::min(input, static_cast<double>(sort->fetch()));
    }
    return input;
  }
  if (const auto* setop = dynamic_cast<const SetOp*>(node.get())) {
    double total = 0;
    double first = RowCount(node->input(0));
    for (const RelNodePtr& input : node->inputs()) {
      total += RowCount(input);
    }
    switch (setop->set_kind()) {
      case SetOp::Kind::kUnion:
        return setop->all() ? total : total * 0.8;
      case SetOp::Kind::kIntersect:
        return std::max(1.0, first * 0.5);
      case SetOp::Kind::kMinus:
        return std::max(1.0, first * 0.5);
    }
  }
  if (const auto* values = dynamic_cast<const Values*>(node.get())) {
    return static_cast<double>(values->tuples().size());
  }
  // Window, Delta, Converter: cardinality-preserving.
  if (node->num_inputs() == 1) return RowCount(node->input(0));
  return kDefaultTableRows;
}

RelOptCost MetadataQuery::NonCumulativeCost(const RelNodePtr& node) {
  if (cache_enabled_) {
    auto it = cost_cache_.find(node.get());
    if (it != cost_cache_.end()) return it->second;
  }
  RelOptCost result = ComputeNonCumulativeCost(node);
  if (cache_enabled_) cost_cache_[node.get()] = result;
  return result;
}

RelOptCost MetadataQuery::ComputeNonCumulativeCost(const RelNodePtr& node) {
  ++computation_count_;
  for (auto it = providers_.rbegin(); it != providers_.rend(); ++it) {
    if (auto v = (*it)->NonCumulativeCost(node, this)) return *v;
  }
  if (auto v = node->SelfCost(this)) return *v;

  // Logical operators have no implementation: infinite cost forces the
  // cost-based planner to convert everything to a physical convention.
  if (node->convention() == Convention::Logical()) {
    return RelOptCost::Infinite();
  }

  double factor = node->convention()->cost_factor();
  if (dynamic_cast<const TableScan*>(node.get()) != nullptr) {
    double rows = RowCount(node);
    return RelOptCost(rows, rows, rows) * factor;
  }
  if (dynamic_cast<const Filter*>(node.get()) != nullptr) {
    double input = RowCount(node->input(0));
    return RelOptCost(RowCount(node), input, 0) * factor;
  }
  if (const auto* project = dynamic_cast<const Project*>(node.get())) {
    double input = RowCount(node->input(0));
    double exprs = static_cast<double>(project->exprs().size());
    return RelOptCost(input, input * (0.1 + exprs * 0.05), 0) * factor;
  }
  if (dynamic_cast<const Join*>(node.get()) != nullptr) {
    // Default join cost: hash join style (build right, probe left).
    double left = RowCount(node->input(0));
    double right = RowCount(node->input(1));
    return RelOptCost(RowCount(node), left + right * 2, 0) * factor;
  }
  if (dynamic_cast<const Aggregate*>(node.get()) != nullptr) {
    double input = RowCount(node->input(0));
    return RelOptCost(RowCount(node), input * 1.5, 0) * factor;
  }
  if (dynamic_cast<const Sort*>(node.get()) != nullptr) {
    double input = RowCount(node->input(0));
    double cpu = input * std::max(1.0, std::log2(std::max(2.0, input)));
    return RelOptCost(input, cpu, 0) * factor;
  }
  if (dynamic_cast<const SetOp*>(node.get()) != nullptr) {
    double total = 0;
    for (const RelNodePtr& input : node->inputs()) total += RowCount(input);
    return RelOptCost(RowCount(node), total, 0) * factor;
  }
  if (dynamic_cast<const Values*>(node.get()) != nullptr) {
    return RelOptCost(RowCount(node), 0.1, 0);
  }
  if (dynamic_cast<const Window*>(node.get()) != nullptr) {
    double input = RowCount(node->input(0));
    double cpu = input * std::max(1.0, std::log2(std::max(2.0, input))) * 1.5;
    return RelOptCost(input, cpu, 0) * factor;
  }
  if (dynamic_cast<const Converter*>(node.get()) != nullptr) {
    // Crossing engines costs a transfer of the whole intermediate result —
    // this is the force that makes pushing work into backends attractive
    // (Figure 2).
    double rows = RowCount(node->input(0));
    return RelOptCost(rows, rows * 0.1, rows);
  }
  double rows = RowCount(node);
  return RelOptCost(rows, rows, 0) * factor;
}

RelOptCost MetadataQuery::CumulativeCost(const RelNodePtr& node) {
  if (cache_enabled_) {
    auto it = cumulative_cost_cache_.find(node.get());
    if (it != cumulative_cost_cache_.end()) return it->second;
  }
  RelOptCost result;
  if (auto v = node->SelfCumulativeCost(this)) {
    result = *v;
  } else {
    result = NonCumulativeCost(node);
    for (const RelNodePtr& input : node->inputs()) {
      result = result + CumulativeCost(input);
    }
  }
  if (cache_enabled_) cumulative_cost_cache_[node.get()] = result;
  return result;
}

double MetadataQuery::Selectivity(const RelNodePtr& node,
                                  const RexNodePtr& predicate) {
  if (predicate == nullptr) return 1.0;
  std::string key;
  if (cache_enabled_) {
    key = std::to_string(reinterpret_cast<uintptr_t>(node.get())) + "/" +
          predicate->ToString();
    auto it = selectivity_cache_.find(key);
    if (it != selectivity_cache_.end()) return it->second;
  }
  double result = ComputeSelectivity(node, predicate);
  if (cache_enabled_) selectivity_cache_[key] = result;
  return result;
}

double MetadataQuery::ComputeSelectivity(const RelNodePtr& node,
                                         const RexNodePtr& predicate) {
  ++computation_count_;
  for (auto it = providers_.rbegin(); it != providers_.rend(); ++it) {
    if (auto v = (*it)->Selectivity(node, predicate, this)) return *v;
  }
  if (RexUtil::IsLiteralTrue(predicate)) return 1.0;
  if (RexUtil::IsLiteralFalse(predicate)) return 0.0;
  const RexCall* call = AsCall(predicate);
  if (call == nullptr) return 0.5;
  switch (call->op()) {
    case OpKind::kEquals:
      return 0.15;
    case OpKind::kNotEquals:
      return 0.85;
    case OpKind::kLessThan:
    case OpKind::kLessThanOrEqual:
    case OpKind::kGreaterThan:
    case OpKind::kGreaterThanOrEqual:
      return 0.5;
    case OpKind::kIsNull:
      return 0.1;
    case OpKind::kIsNotNull:
      return 0.9;
    case OpKind::kLike:
      return 0.25;
    case OpKind::kIn:
      return std::min(1.0, 0.15 * static_cast<double>(
                                      call->operands().size() - 1));
    case OpKind::kBetween:
      return 0.35;
    case OpKind::kAnd: {
      double sel = 1.0;
      for (const RexNodePtr& operand : call->operands()) {
        sel *= Selectivity(node, operand);
      }
      return sel;
    }
    case OpKind::kOr: {
      double sel = 0.0;
      for (const RexNodePtr& operand : call->operands()) {
        sel = sel + Selectivity(node, operand) -
              sel * Selectivity(node, operand);
      }
      return sel;
    }
    case OpKind::kNot:
      return 1.0 - Selectivity(node, call->operand(0));
    default:
      return 0.25;
  }
}

bool MetadataQuery::AreColumnsUnique(const RelNodePtr& node,
                                     const std::vector<int>& columns) {
  std::string key;
  if (cache_enabled_) {
    key = std::to_string(reinterpret_cast<uintptr_t>(node.get()));
    for (int c : columns) key += "," + std::to_string(c);
    auto it = unique_cache_.find(key);
    if (it != unique_cache_.end()) return it->second;
  }
  bool result = ComputeAreColumnsUnique(node, columns);
  if (cache_enabled_) unique_cache_[key] = result;
  return result;
}

bool MetadataQuery::ComputeAreColumnsUnique(const RelNodePtr& node,
                                            const std::vector<int>& columns) {
  ++computation_count_;
  for (auto it = providers_.rbegin(); it != providers_.rend(); ++it) {
    if (auto v = (*it)->AreColumnsUnique(node, columns, this)) return *v;
  }
  if (auto v = node->SelfColumnsUnique(this, columns)) return *v;
  if (columns.empty()) return false;
  if (const auto* scan = dynamic_cast<const TableScan*>(node.get())) {
    return scan->table()->GetStatistic().IsKey(columns);
  }
  if (dynamic_cast<const Filter*>(node.get()) != nullptr ||
      dynamic_cast<const Sort*>(node.get()) != nullptr ||
      dynamic_cast<const Delta*>(node.get()) != nullptr ||
      dynamic_cast<const Converter*>(node.get()) != nullptr) {
    return AreColumnsUnique(node->input(0), columns);
  }
  if (const auto* project = dynamic_cast<const Project*>(node.get())) {
    // Map output columns back to input columns; only pure references keep
    // uniqueness.
    std::vector<int> input_cols;
    for (int c : columns) {
      if (c < 0 || static_cast<size_t>(c) >= project->exprs().size()) {
        return false;
      }
      const RexInputRef* ref = AsInputRef(project->exprs()[static_cast<size_t>(c)]);
      if (ref == nullptr) return false;
      input_cols.push_back(ref->index());
    }
    return AreColumnsUnique(node->input(0), input_cols);
  }
  if (const auto* agg = dynamic_cast<const Aggregate*>(node.get())) {
    // The group keys (output fields 0..k-1) are unique by construction.
    size_t key_count = agg->group_keys().size();
    std::vector<bool> covered(key_count, false);
    for (int c : columns) {
      if (c >= 0 && static_cast<size_t>(c) < key_count) {
        covered[static_cast<size_t>(c)] = true;
      }
    }
    for (bool b : covered) {
      if (!b) return false;
    }
    return key_count > 0;
  }
  return false;
}

double MetadataQuery::AverageRowSize(const RelNodePtr& node) {
  if (cache_enabled_) {
    auto it = row_size_cache_.find(node.get());
    if (it != row_size_cache_.end()) return it->second;
  }
  double result = ComputeAverageRowSize(node);
  if (cache_enabled_) row_size_cache_[node.get()] = result;
  return result;
}

double MetadataQuery::ComputeAverageRowSize(const RelNodePtr& node) {
  ++computation_count_;
  for (auto it = providers_.rbegin(); it != providers_.rend(); ++it) {
    if (auto v = (*it)->AverageRowSize(node, this)) return *v;
  }
  double size = 0;
  for (const RelDataTypeField& field : node->row_type()->fields()) {
    switch (field.type->type_name()) {
      case SqlTypeName::kBoolean:
        size += 1;
        break;
      case SqlTypeName::kTinyInt:
      case SqlTypeName::kSmallInt:
      case SqlTypeName::kInteger:
        size += 4;
        break;
      case SqlTypeName::kBigInt:
      case SqlTypeName::kDouble:
      case SqlTypeName::kFloat:
      case SqlTypeName::kDecimal:
      case SqlTypeName::kDate:
      case SqlTypeName::kTime:
      case SqlTypeName::kTimestamp:
      case SqlTypeName::kIntervalDay:
        size += 8;
        break;
      case SqlTypeName::kChar:
      case SqlTypeName::kVarchar:
        size += field.type->precision() > 0 ? field.type->precision() : 32;
        break;
      default:
        size += 16;
    }
  }
  return std::max(1.0, size);
}

}  // namespace calcite
