#ifndef CALCITE_METADATA_METADATA_H_
#define CALCITE_METADATA_METADATA_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "plan/traits.h"
#include "rel/rel_node.h"
#include "rex/rex_node.h"

namespace calcite {

class MetadataQuery;

/// A pluggable metadata provider (§6: "Calcite provides interfaces that
/// allow data processing systems to plug their metadata information into the
/// framework"). Providers are consulted in registration order; the first
/// non-nullopt answer wins, falling back to the built-in default provider.
class MetadataProvider {
 public:
  virtual ~MetadataProvider() = default;

  /// Estimated number of rows produced by `node`.
  virtual std::optional<double> RowCount(const RelNodePtr&, MetadataQuery*) {
    return std::nullopt;
  }

  /// Cost of executing `node` itself, excluding its inputs.
  virtual std::optional<RelOptCost> NonCumulativeCost(const RelNodePtr&,
                                                      MetadataQuery*) {
    return std::nullopt;
  }

  /// Fraction of input rows that satisfy `predicate` at `node`.
  virtual std::optional<double> Selectivity(const RelNodePtr&,
                                            const RexNodePtr&,
                                            MetadataQuery*) {
    return std::nullopt;
  }

  /// Whether the given output columns are unique in `node`'s output.
  virtual std::optional<bool> AreColumnsUnique(const RelNodePtr&,
                                               const std::vector<int>&,
                                               MetadataQuery*) {
    return std::nullopt;
  }

  /// Average byte width of one output row.
  virtual std::optional<double> AverageRowSize(const RelNodePtr&,
                                               MetadataQuery*) {
    return std::nullopt;
  }
};

/// The optimizer's window onto plan metadata (§6 "Metadata providers"): row
/// counts, costs, selectivities, uniqueness, sizes. Results are memoized in
/// a cache keyed by (node, metadata kind, argument); the paper calls out
/// that this cache "yields significant performance improvements, e.g., when
/// we need to compute multiple types of metadata such as cardinality,
/// average row size, and selectivity for a given join, and all these
/// computations rely on the cardinality of their inputs" — reproduced by
/// bench_metadata_cache.
class MetadataQuery {
 public:
  /// Registers the built-in statistics-backed provider
  /// (metadata/table_stats_provider.h), so ANALYZE results feed every
  /// MetadataQuery automatically. Custom providers added afterwards take
  /// precedence over it.
  MetadataQuery();

  /// Registers a custom provider; later registrations take precedence.
  void AddProvider(std::shared_ptr<MetadataProvider> provider);

  /// Enables/disables memoization (on by default). Disabling also clears.
  void SetCacheEnabled(bool enabled);
  bool cache_enabled() const { return cache_enabled_; }

  /// Clears memoized results (call when the plan graph changes identity).
  void ClearCache();

  /// Estimated output cardinality of `node`.
  double RowCount(const RelNodePtr& node);

  /// Cost of `node` itself (excluding inputs), already scaled by its
  /// convention's cost factor. Logical-convention operators are not
  /// executable and report infinite cost.
  RelOptCost NonCumulativeCost(const RelNodePtr& node);

  /// Cost of the whole subtree rooted at `node`.
  RelOptCost CumulativeCost(const RelNodePtr& node);

  /// Estimated fraction of `node`'s rows satisfying `predicate`
  /// (1.0 for null predicate).
  double Selectivity(const RelNodePtr& node, const RexNodePtr& predicate);

  /// True if the given columns form a unique key of `node`'s output.
  bool AreColumnsUnique(const RelNodePtr& node,
                        const std::vector<int>& columns);

  /// Average output row width in bytes.
  double AverageRowSize(const RelNodePtr& node);

  /// Number of underlying (uncached) metadata computations performed; used
  /// by tests and the cache benchmark.
  int64_t computation_count() const { return computation_count_; }

 private:
  friend class DefaultMetadata;

  double ComputeRowCount(const RelNodePtr& node);
  RelOptCost ComputeNonCumulativeCost(const RelNodePtr& node);
  double ComputeSelectivity(const RelNodePtr& node,
                            const RexNodePtr& predicate);
  bool ComputeAreColumnsUnique(const RelNodePtr& node,
                               const std::vector<int>& columns);
  double ComputeAverageRowSize(const RelNodePtr& node);

  std::vector<std::shared_ptr<MetadataProvider>> providers_;
  bool cache_enabled_ = true;
  int64_t computation_count_ = 0;

  std::unordered_map<const RelNode*, double> row_count_cache_;
  std::unordered_map<const RelNode*, RelOptCost> cost_cache_;
  std::unordered_map<const RelNode*, RelOptCost> cumulative_cost_cache_;
  std::unordered_map<std::string, double> selectivity_cache_;
  std::unordered_map<std::string, bool> unique_cache_;
  std::unordered_map<const RelNode*, double> row_size_cache_;
};

}  // namespace calcite

#endif  // CALCITE_METADATA_METADATA_H_
