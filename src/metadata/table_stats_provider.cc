#include "metadata/table_stats_provider.h"

#include <algorithm>

#include "rel/core.h"
#include "rex/rex_util.h"
#include "schema/table_stats.h"

namespace calcite {

namespace {

/// The built-in fixed guesses (metadata.cc), keyed by pushed-predicate
/// shape — used for a pushed conjunct whose column lacks usable stats, so
/// a partially-analyzable conjunction still blends estimates per factor.
double DefaultGuess(ScanPredicate::Kind kind) {
  switch (kind) {
    case ScanPredicate::Kind::kEquals:
      return 0.15;
    case ScanPredicate::Kind::kNotEquals:
      return 0.85;
    case ScanPredicate::Kind::kIsNull:
      return 0.1;
    case ScanPredicate::Kind::kIsNotNull:
      return 0.9;
    default:
      return 0.5;  // range comparisons
  }
}

}  // namespace

std::optional<double> TableStatsProvider::Selectivity(
    const RelNodePtr& node, const RexNodePtr& predicate, MetadataQuery* mq) {
  if (predicate == nullptr) return std::nullopt;
  const auto* scan = dynamic_cast<const TableScan*>(node.get());
  if (scan == nullptr) return std::nullopt;
  TableStats stats = scan->table()->GetStatistic();
  if (!stats.analyzed()) return std::nullopt;

  const int width = static_cast<int>(stats.columns.size());
  ScanPredicateList pushed;
  std::vector<RexNodePtr> residual;
  ExtractScanPredicates(predicate, width, &pushed, &residual);
  if (pushed.empty()) return std::nullopt;

  // Conjunction under independence: product over the pushed factors (each
  // scored from its column's stats) times the residual factors (scored by
  // the MetadataQuery — this provider declines on them, so the built-in
  // guesses apply).
  bool any_estimated = false;
  double selectivity = 1.0;
  for (const ScanPredicate& pred : pushed) {
    const ColumnStats* column = stats.column(pred.column);
    std::optional<double> estimate =
        column ? EstimatePredicateSelectivity(*column, pred) : std::nullopt;
    if (estimate.has_value()) {
      any_estimated = true;
      selectivity *= *estimate;
    } else {
      selectivity *= DefaultGuess(pred.kind);
    }
  }
  if (!any_estimated) return std::nullopt;
  for (const RexNodePtr& conjunct : residual) {
    selectivity *= mq->Selectivity(node, conjunct);
  }
  return std::clamp(selectivity, 0.0, 1.0);
}

}  // namespace calcite
