#include "materialize/materialized_views.h"

#include <set>

#include "plan/hep_planner.h"
#include "rex/rex_util.h"
#include "rules/core_rules.h"
#include "tools/frameworks.h"
#include "util/string_utils.h"

namespace calcite {

namespace {

/// Normalizes a logical plan so structurally-different but equivalent trees
/// compare equal more often (the "transformation rules that try to unify
/// expressions in the plan" of §6's substitution algorithm).
Result<RelNodePtr> Normalize(const RelNodePtr& plan, PlannerContext* context) {
  HepPlanner planner(StandardLogicalRules(), context);
  return planner.Optimize(plan);
}

/// Scan node over a materialization's backing table (logical convention;
/// the physical phase turns it into an EnumerableTableScan).
RelNodePtr ScanOf(const Materialization& m, const TypeFactory& tf) {
  return LogicalTableScan::Create(m.table, {m.name}, Convention::Enumerable(),
                                  tf);
}

class MaterializedViewSubstitutionRule final : public RelOptRule {
 public:
  explicit MaterializedViewSubstitutionRule(
      const std::vector<Materialization>* materializations)
      : materializations_(materializations) {}

  std::string name() const override {
    return "MaterializedViewSubstitutionRule";
  }

  bool MatchesRoot(const RelNode& node) const override {
    return node.convention() == Convention::Logical();
  }

  bool NeedsConcreteChildren() const override { return true; }

  void OnMatch(RelOptRuleCall* call) const override {
    const RelNodePtr& node = call->rel();
    std::string digest = node->Digest();
    for (const Materialization& m : *materializations_) {
      // (a) Exact substitution.
      if (m.plan->Digest() == digest) {
        call->TransformTo(ScanOf(m, call->type_factory()));
        return;
      }
      // (b) Residual filter: node = Filter(X, q), view = Filter(X, p),
      // conjuncts(p) ⊆ conjuncts(q) → Filter(scan, q \ p).
      if (const auto* query_filter = dynamic_cast<const Filter*>(node.get())) {
        if (const auto* view_filter =
                dynamic_cast<const Filter*>(m.plan.get())) {
          if (view_filter->input(0)->Digest() ==
              query_filter->input(0)->Digest()) {
            std::set<std::string> view_conjuncts;
            for (const RexNodePtr& c :
                 RexUtil::FlattenAnd(view_filter->condition())) {
              view_conjuncts.insert(c->ToString());
            }
            std::vector<RexNodePtr> residual;
            bool all_covered = true;
            std::set<std::string> query_conjuncts;
            for (const RexNodePtr& c :
                 RexUtil::FlattenAnd(query_filter->condition())) {
              query_conjuncts.insert(c->ToString());
              if (view_conjuncts.count(c->ToString()) == 0) {
                residual.push_back(c);
              }
            }
            // Every view conjunct must be implied by the query (otherwise
            // the view dropped rows the query needs).
            for (const std::string& vc : view_conjuncts) {
              if (query_conjuncts.count(vc) == 0) all_covered = false;
            }
            if (all_covered) {
              RelNodePtr scan = ScanOf(m, call->type_factory());
              if (residual.empty()) {
                call->TransformTo(std::move(scan));
              } else {
                call->TransformTo(LogicalFilter::Create(
                    std::move(scan),
                    call->rex_builder().MakeAnd(std::move(residual))));
              }
              return;
            }
          }
        }
      }
      // (c) Aggregate rollup.
      if (const auto* query_agg =
              dynamic_cast<const Aggregate*>(node.get())) {
        if (const auto* view_agg =
                dynamic_cast<const Aggregate*>(m.plan.get())) {
          RelNodePtr rollup =
              TryRollup(*query_agg, *view_agg, m, call);
          if (rollup != nullptr) {
            call->TransformTo(std::move(rollup));
            return;
          }
        }
      }
    }
  }

 private:
  /// A grouped query reduced to base-relative form: the digest of the base
  /// relation (below any pre-projection), the group-key expressions and the
  /// aggregate arguments as canonical strings over that base.
  struct AggShape {
    std::string base_digest;
    std::vector<std::string> keys;
    struct Call {
      AggKind kind;
      bool distinct;
      std::string arg;  // "" for COUNT(*)
    };
    std::vector<Call> calls;
  };

  static bool ExtractShape(const Aggregate& agg, AggShape* shape) {
    const RelNodePtr& input = agg.input(0);
    const Project* project = dynamic_cast<const Project*>(input.get());
    const RelNodePtr& base = project != nullptr ? input->input(0) : input;
    shape->base_digest = base->Digest();
    auto expr_of = [&](int index) -> std::string {
      if (project != nullptr) {
        return project->exprs()[static_cast<size_t>(index)]->ToString();
      }
      return "$" + std::to_string(index);
    };
    for (int key : agg.group_keys()) shape->keys.push_back(expr_of(key));
    for (const AggregateCall& call : agg.agg_calls()) {
      AggShape::Call c;
      c.kind = call.kind;
      c.distinct = call.distinct;
      c.arg = call.args.empty() ? "" : expr_of(call.args[0]);
      shape->calls.push_back(std::move(c));
    }
    return true;
  }

  /// Rewrites Aggregate(X, K, A) as Aggregate(scan(view), K'', A'') when the
  /// view is Aggregate(X, K' ⊇ K, A') and each call in A rolls up from A'.
  /// Pre-projections on either side are looked through by comparing the
  /// projected expressions over the shared base.
  RelNodePtr TryRollup(const Aggregate& query, const Aggregate& view,
                       const Materialization& m, RelOptRuleCall* call) const {
    AggShape q, v;
    ExtractShape(query, &q);
    ExtractShape(view, &v);
    if (q.base_digest != v.base_digest) return nullptr;

    // Query keys must appear among the view keys; record their positions in
    // the view output (keys come first).
    std::vector<int> key_positions;
    for (const std::string& qk : q.keys) {
      int position = -1;
      for (size_t i = 0; i < v.keys.size(); ++i) {
        if (v.keys[i] == qk) {
          position = static_cast<int>(i);
          break;
        }
      }
      if (position < 0) return nullptr;
      key_positions.push_back(position);
    }
    // Each query aggregate must roll up from a view aggregate.
    std::vector<AggregateCall> rollup_calls;
    for (size_t qi = 0; qi < q.calls.size(); ++qi) {
      const AggShape::Call& qc = q.calls[qi];
      if (qc.distinct) return nullptr;  // DISTINCT does not roll up.
      int source = -1;
      AggKind rollup_kind = qc.kind;
      for (size_t i = 0; i < v.calls.size(); ++i) {
        const AggShape::Call& vc = v.calls[i];
        if (vc.distinct) continue;
        if (qc.kind == AggKind::kCountStar &&
            vc.kind == AggKind::kCountStar) {
          source = static_cast<int>(i);
          rollup_kind = AggKind::kSum;  // COUNT(*) rolls up as SUM of counts
          break;
        }
        if (vc.arg != qc.arg) continue;
        if ((qc.kind == AggKind::kSum && vc.kind == AggKind::kSum) ||
            (qc.kind == AggKind::kCount && vc.kind == AggKind::kCount)) {
          source = static_cast<int>(i);
          rollup_kind = AggKind::kSum;
          break;
        }
        if ((qc.kind == AggKind::kMin && vc.kind == AggKind::kMin) ||
            (qc.kind == AggKind::kMax && vc.kind == AggKind::kMax)) {
          source = static_cast<int>(i);
          rollup_kind = qc.kind;
          break;
        }
      }
      if (source < 0) return nullptr;
      AggregateCall rolled;
      rolled.kind = rollup_kind;
      rolled.distinct = false;
      rolled.args = {static_cast<int>(v.keys.size()) + source};
      rolled.name = query.agg_calls()[qi].name;
      rollup_calls.push_back(std::move(rolled));
    }
    RelNodePtr scan = ScanOf(m, call->type_factory());
    return LogicalAggregate::Create(std::move(scan), key_positions,
                                    std::move(rollup_calls),
                                    call->type_factory());
  }

  const std::vector<Materialization>* materializations_;
};

}  // namespace

Status MaterializationCatalog::Register(Connection* connection,
                                        const std::string& name,
                                        const std::string& sql) {
  auto logical = connection->ParseQuery(sql);
  if (!logical.ok()) return logical.status();
  auto normalized = Normalize(logical.value(), connection->context());
  if (!normalized.ok()) return normalized.status();

  // Precompute the view contents.
  auto result = connection->Query(sql);
  if (!result.ok()) return result.status();
  auto table = std::make_shared<MemTable>(result.value().row_type,
                                          std::move(result).value().rows);
  TableStats stat;
  stat.row_count = static_cast<double>(table->rows().size());
  table->set_statistic(stat);

  materializations_.push_back(
      Materialization{name, normalized.value(), std::move(table)});
  return Status::OK();
}

RelOptRulePtr MaterializationCatalog::SubstitutionRule() const {
  return std::make_shared<MaterializedViewSubstitutionRule>(
      &materializations_);
}

Status Lattice::BuildTile(Connection* connection,
                          MaterializationCatalog* catalog,
                          const std::vector<std::string>& keys) {
  for (const std::string& key : keys) {
    bool known = false;
    for (const std::string& dim : dimensions_) {
      if (EqualsIgnoreCase(dim, key)) known = true;
    }
    if (!known) {
      return Status::InvalidArgument("'" + key +
                                     "' is not a lattice dimension");
    }
  }
  std::string name = "tile_" + JoinStrings(keys, "_");
  std::string sql = "SELECT " + JoinStrings(keys, ", ") +
                    ", COUNT(*) AS cnt, SUM(" + measure_ + ") AS sm FROM (" +
                    fact_sql_ + ") AS fact GROUP BY " +
                    JoinStrings(keys, ", ");
  CALCITE_RETURN_IF_ERROR(catalog->Register(connection, name, sql));
  tiles_.push_back({name, keys});
  return Status::OK();
}

std::string Lattice::FindCoveringTile(
    const std::vector<std::string>& keys) const {
  std::string best;
  size_t best_size = SIZE_MAX;
  for (const auto& [name, tile_keys] : tiles_) {
    bool covers = true;
    for (const std::string& key : keys) {
      bool found = false;
      for (const std::string& tk : tile_keys) {
        if (EqualsIgnoreCase(tk, key)) found = true;
      }
      if (!found) {
        covers = false;
        break;
      }
    }
    if (covers && tile_keys.size() < best_size) {
      best = name;
      best_size = tile_keys.size();
    }
  }
  return best;
}

}  // namespace calcite
