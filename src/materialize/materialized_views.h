#ifndef CALCITE_MATERIALIZE_MATERIALIZED_VIEWS_H_
#define CALCITE_MATERIALIZE_MATERIALIZED_VIEWS_H_

#include <memory>
#include <string>
#include <vector>

#include "plan/rule.h"
#include "rel/core.h"
#include "schema/table.h"
#include "util/status.h"

namespace calcite {

class Connection;

/// A registered materialization: the precomputation of a query whose result
/// is stored as a table (§6: "one of the most powerful techniques to
/// accelerate query processing in data warehouses is the precomputation of
/// relevant summaries or materialized views").
struct Materialization {
  std::string name;
  /// The view's defining query, as a *normalized* logical plan.
  RelNodePtr plan;
  /// The precomputed result.
  TablePtr table;
};

/// Registry of materializations known to the optimizer, plus the rewriting
/// rule implementing Calcite's *view substitution* algorithm ([10, 18]):
/// "substitute part of the relational algebra tree with an equivalent
/// expression which makes use of a materialized view", including partial
/// rewritings "that include additional operators to compute the desired
/// expression, e.g., filters with residual predicate conditions".
///
/// Supported rewritings:
///   - exact: subtree ≡ view definition → scan(view)
///   - residual filter: Filter(X, p ∧ r) over view Filter(X, p)
///     → Filter(scan(view), r)
///   - aggregate rollup: Aggregate(X, K, A) over view Aggregate(X, K' ⊇ K,
///     A') when every aggregate in A rolls up from A'
///     (SUM→SUM, COUNT→SUM, MIN→MIN, MAX→MAX).
class MaterializationCatalog {
 public:
  /// Registers a materialization: parses/normalizes `sql` against
  /// `connection`'s schema and executes it once to populate the backing
  /// table (the precomputation).
  Status Register(Connection* connection, const std::string& name,
                  const std::string& sql);

  /// Registers a prebuilt materialization.
  void Register(Materialization materialization) {
    materializations_.push_back(std::move(materialization));
  }

  const std::vector<Materialization>& materializations() const {
    return materializations_;
  }

  /// The substitution rule to add to the logical phase.
  RelOptRulePtr SubstitutionRule() const;

 private:
  std::vector<Materialization> materializations_;
};

/// A lattice (§6, [22]): data sources declared to form a star schema whose
/// aggregation space is organized as tiles. Each *tile* is a
/// materialization of the fact query grouped by a subset of dimension
/// attributes; "the rewriting algorithm is especially efficient in matching
/// expressions over data sources organized in a star schema".
class Lattice {
 public:
  /// `fact_sql`: the star query whose aggregations the lattice serves,
  /// e.g. "SELECT * FROM sales JOIN products USING (productId)".
  /// `dimension_columns`: output columns of fact_sql usable as group keys.
  /// `measure_column`: the column summed by tiles (alongside COUNT(*)).
  Lattice(std::string fact_sql, std::vector<std::string> dimension_columns,
          std::string measure_column)
      : fact_sql_(std::move(fact_sql)),
        dimensions_(std::move(dimension_columns)),
        measure_(std::move(measure_column)) {}

  /// Materializes the tile grouping by `keys` (must be dimension columns)
  /// and registers it in `catalog`. The tile computes COUNT(*) and
  /// SUM(measure) — enough to answer any rollup of those measures.
  Status BuildTile(Connection* connection, MaterializationCatalog* catalog,
                   const std::vector<std::string>& keys);

  /// The tiles built so far (tile name -> group keys).
  const std::vector<std::pair<std::string, std::vector<std::string>>>& tiles()
      const {
    return tiles_;
  }

  /// Picks the smallest registered tile whose keys cover `keys`; empty
  /// string if none.
  std::string FindCoveringTile(const std::vector<std::string>& keys) const;

 private:
  std::string fact_sql_;
  std::vector<std::string> dimensions_;
  std::string measure_;
  std::vector<std::pair<std::string, std::vector<std::string>>> tiles_;
  std::vector<size_t> tile_sizes_;
};

}  // namespace calcite

#endif  // CALCITE_MATERIALIZE_MATERIALIZED_VIEWS_H_
