#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace calcite {

const JsonValue* JsonValue::Get(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = object_.find(key);
  if (it == object_.end()) return nullptr;
  return &it->second;
}

namespace {

void EscapeString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\r':
        out->append("\\r");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void FormatNumber(double n, std::string* out) {
  if (n == std::floor(n) && std::abs(n) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(n));
    out->append(buf);
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", n);
    out->append(buf);
  }
}

void Indent(std::string* out, int indent, int depth) {
  if (indent <= 0) return;
  out->push_back('\n');
  out->append(static_cast<size_t>(indent) * depth, ' ');
}

}  // namespace

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      out->append("null");
      break;
    case Kind::kBool:
      out->append(bool_ ? "true" : "false");
      break;
    case Kind::kNumber:
      FormatNumber(number_, out);
      break;
    case Kind::kString:
      EscapeString(string_, out);
      break;
    case Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& v : array_) {
        if (!first) out->push_back(',');
        first = false;
        Indent(out, indent, depth + 1);
        v.DumpTo(out, indent, depth + 1);
      }
      if (!array_.empty()) Indent(out, indent, depth);
      out->push_back(']');
      break;
    }
    case Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, v] : object_) {
        if (!first) out->push_back(',');
        first = false;
        Indent(out, indent, depth + 1);
        EscapeString(key, out);
        out->push_back(':');
        if (indent > 0) out->push_back(' ');
        v.DumpTo(out, indent, depth + 1);
      }
      if (!object_.empty()) Indent(out, indent, depth);
      out->push_back('}');
      break;
    }
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(&out, 0, 0);
  return out;
}

std::string JsonValue::DumpPretty() const {
  std::string out;
  DumpTo(&out, 2, 0);
  return out;
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWhitespace();
    auto value = ParseValue();
    if (!value.ok()) return value;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& msg) {
    return Status::ParseError("JSON: " + msg + " at offset " +
                              std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        auto s = ParseString();
        if (!s.ok()) return s.status();
        return JsonValue(std::move(s).value());
      }
      case 't':
        if (ConsumeLiteral("true")) return JsonValue(true);
        return Error("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) return JsonValue(false);
        return Error("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) return JsonValue();
        return Error("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseObject() {
    Consume('{');
    JsonValue obj = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return obj;
    while (true) {
      SkipWhitespace();
      auto key = ParseString();
      if (!key.ok()) return key.status();
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      SkipWhitespace();
      auto value = ParseValue();
      if (!value.ok()) return value;
      obj.Set(key.value(), std::move(value).value());
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return obj;
      return Error("expected ',' or '}'");
    }
  }

  Result<JsonValue> ParseArray() {
    Consume('[');
    JsonValue arr = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return arr;
    while (true) {
      SkipWhitespace();
      auto value = ParseValue();
      if (!value.ok()) return value;
      arr.Append(std::move(value).value());
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return arr;
      return Error("expected ',' or ']'");
    }
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Error("expected '\"'");
    std::string result;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return result;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Error("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"':
            result.push_back('"');
            break;
          case '\\':
            result.push_back('\\');
            break;
          case '/':
            result.push_back('/');
            break;
          case 'b':
            result.push_back('\b');
            break;
          case 'f':
            result.push_back('\f');
            break;
          case 'n':
            result.push_back('\n');
            break;
          case 'r':
            result.push_back('\r');
            break;
          case 't':
            result.push_back('\t');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Error("bad hex digit in \\u escape");
              }
            }
            // Encode as UTF-8 (BMP only).
            if (code < 0x80) {
              result.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              result.push_back(static_cast<char>(0xC0 | (code >> 6)));
              result.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              result.push_back(static_cast<char>(0xE0 | (code >> 12)));
              result.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              result.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Error("invalid escape character");
        }
      } else {
        result.push_back(c);
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("invalid number");
    std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) return Error("invalid number");
    return JsonValue(value);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return JsonParser(text).Parse();
}

}  // namespace calcite
