#ifndef CALCITE_UTIL_STATUS_H_
#define CALCITE_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace calcite {

/// Error categories used across the framework. Mirrors the error surfaces a
/// database framework exposes: parse errors, validation (semantic) errors,
/// planner errors, and runtime (execution) errors.
enum class StatusCode {
  kOk = 0,
  kParseError,
  kValidationError,
  kPlanError,
  kRuntimeError,
  kNotFound,
  kInvalidArgument,
  kUnsupported,
  kInternal,
};

/// Returns a human-readable name for a status code ("ParseError", ...).
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error value, modeled after the Status idiom used
/// by RocksDB/Arrow. The framework does not throw exceptions across its
/// public API; fallible operations return Status or Result<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status ValidationError(std::string msg) {
    return Status(StatusCode::kValidationError, std::move(msg));
  }
  static Status PlanError(std::string msg) {
    return Status(StatusCode::kPlanError, std::move(msg));
  }
  static Status RuntimeError(std::string msg) {
    return Status(StatusCode::kRuntimeError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error result, modeled after absl::StatusOr. Holds either a T
/// (when status().ok()) or an error Status.
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return value;` in functions returning
  /// Result<T>.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status. The status must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace calcite

/// Propagates a non-OK Status from an expression producing Status.
#define CALCITE_RETURN_IF_ERROR(expr)            \
  do {                                           \
    ::calcite::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Evaluates an expression producing Result<T>; on error propagates the
/// Status, otherwise assigns the value to `lhs`.
#define CALCITE_ASSIGN_OR_RETURN(lhs, expr)      \
  auto CALCITE_CONCAT_(_res_, __LINE__) = (expr);               \
  if (!CALCITE_CONCAT_(_res_, __LINE__).ok())                   \
    return CALCITE_CONCAT_(_res_, __LINE__).status();           \
  lhs = std::move(CALCITE_CONCAT_(_res_, __LINE__)).value()

#define CALCITE_CONCAT_(a, b) CALCITE_CONCAT_IMPL_(a, b)
#define CALCITE_CONCAT_IMPL_(a, b) a##b

#endif  // CALCITE_UTIL_STATUS_H_
