#ifndef CALCITE_UTIL_STRING_UTILS_H_
#define CALCITE_UTIL_STRING_UTILS_H_

#include <string>
#include <string_view>
#include <vector>

namespace calcite {

/// Joins the elements of `parts` with `sep` between them.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Splits `s` on the single character `sep`. Empty fields are preserved.
std::vector<std::string> Split(std::string_view s, char sep);

/// Returns `s` converted to upper case (ASCII only).
std::string ToUpper(std::string_view s);

/// Returns `s` converted to lower case (ASCII only).
std::string ToLower(std::string_view s);

/// Returns `s` with leading and trailing whitespace removed.
std::string Trim(std::string_view s);

/// Case-insensitive ASCII string equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// SQL LIKE pattern matching: '%' matches any sequence, '_' any single
/// character. No escape character support.
bool SqlLikeMatch(std::string_view value, std::string_view pattern);

}  // namespace calcite

#endif  // CALCITE_UTIL_STRING_UTILS_H_
