#include "util/status.h"

namespace calcite {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kValidationError:
      return "ValidationError";
    case StatusCode::kPlanError:
      return "PlanError";
    case StatusCode::kRuntimeError:
      return "RuntimeError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string result = StatusCodeName(code_);
  result += ": ";
  result += message_;
  return result;
}

}  // namespace calcite
