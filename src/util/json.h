#ifndef CALCITE_UTIL_JSON_H_
#define CALCITE_UTIL_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace calcite {

/// A minimal JSON document value. Used by the model loader (adapter
/// specifications), the MongoDB-style document adapter, and the JSON query
/// generators (Druid/Elasticsearch-style target languages in Table 2).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  explicit JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit JsonValue(double n) : kind_(Kind::kNumber), number_(n) {}
  explicit JsonValue(int n) : kind_(Kind::kNumber), number_(n) {}
  explicit JsonValue(int64_t n)
      : kind_(Kind::kNumber), number_(static_cast<double>(n)) {}
  explicit JsonValue(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  explicit JsonValue(const char* s) : kind_(Kind::kString), string_(s) {}

  static JsonValue Array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const std::vector<JsonValue>& as_array() const { return array_; }
  const std::map<std::string, JsonValue>& as_object() const { return object_; }

  /// Appends to an array value.
  void Append(JsonValue v) { array_.push_back(std::move(v)); }

  /// Sets a key in an object value.
  void Set(const std::string& key, JsonValue v) {
    object_[key] = std::move(v);
  }

  /// Looks up a key in an object; returns nullptr if absent or not an object.
  const JsonValue* Get(const std::string& key) const;

  /// Serializes to compact JSON text.
  std::string Dump() const;

  /// Serializes with 2-space indentation.
  std::string DumpPretty() const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses JSON text into a JsonValue. Supports the full JSON grammar with
/// \uXXXX escapes (BMP only).
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace calcite

#endif  // CALCITE_UTIL_JSON_H_
