#include "util/string_utils.h"

#include <algorithm>
#include <cctype>

namespace calcite {

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result.append(sep);
    result.append(parts[i]);
  }
  return result;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> result;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      result.emplace_back(s.substr(start));
      break;
    }
    result.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return result;
}

std::string ToUpper(std::string_view s) {
  std::string result(s);
  std::transform(result.begin(), result.end(), result.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return result;
}

std::string ToLower(std::string_view s) {
  std::string result(s);
  std::transform(result.begin(), result.end(), result.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return result;
}

std::string Trim(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return std::string(s.substr(begin, end - begin));
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

namespace {

bool LikeMatchImpl(std::string_view value, std::string_view pattern, size_t vi,
                   size_t pi) {
  while (pi < pattern.size()) {
    char pc = pattern[pi];
    if (pc == '%') {
      // Collapse consecutive '%'.
      while (pi < pattern.size() && pattern[pi] == '%') ++pi;
      if (pi == pattern.size()) return true;
      for (size_t k = vi; k <= value.size(); ++k) {
        if (LikeMatchImpl(value, pattern, k, pi)) return true;
      }
      return false;
    }
    if (vi >= value.size()) return false;
    if (pc != '_' && pc != value[vi]) return false;
    ++vi;
    ++pi;
  }
  return vi == value.size();
}

}  // namespace

bool SqlLikeMatch(std::string_view value, std::string_view pattern) {
  return LikeMatchImpl(value, pattern, 0, 0);
}

}  // namespace calcite
