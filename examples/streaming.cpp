// §7.2: streaming queries — the STREAM directive, tumbling-window
// aggregation with TUMBLE/TUMBLE_END, and incremental (per-batch) emission
// through the StreamExecutor.

#include <cstdio>

#include "stream/stream.h"
#include "tools/frameworks.h"

using namespace calcite;

int main() {
  TypeFactory tf;
  auto ts_t = tf.CreateSqlType(SqlTypeName::kTimestamp);
  auto int_t = tf.CreateSqlType(SqlTypeName::kInteger);

  auto orders = std::make_shared<stream::StreamTable>(
      tf.CreateStructType({"rowtime", "productId", "units"},
                          {ts_t, int_t, int_t}),
      /*rowtime_column=*/0);
  auto schema = std::make_shared<Schema>();
  schema->AddTable("Orders", orders);
  Connection conn{Connection::Config{schema}};

  constexpr int64_t kHour = 3600 * 1000;

  // The paper's tumbling-window query.
  const std::string sql =
      "SELECT STREAM TUMBLE_END(rowtime, INTERVAL '1' HOUR) AS rowtime, "
      "productId, COUNT(*) AS c, SUM(units) AS units "
      "FROM Orders "
      "GROUP BY TUMBLE(rowtime, INTERVAL '1' HOUR), productId";
  std::printf("Streaming query:\n  %s\n\n", sql.c_str());

  // Synthesize four hours of events, two products.
  std::vector<Row> events;
  for (int i = 0; i < 24; ++i) {
    events.push_back({Value::Int(i * (kHour / 6)), Value::Int(i % 2),
                      Value::Int(5 + i % 3)});
  }

  stream::StreamExecutor executor(&conn, sql);
  int batch = 0;
  auto emitted = executor.Run(
      orders.get(), events, /*batch_size=*/6,
      [&](const std::vector<Row>& rows) {
        std::printf("batch %d emitted %zu window row(s):\n", ++batch,
                    rows.size());
        for (const Row& row : rows) {
          std::printf("  window_end=%lld product=%lld count=%lld units=%lld\n",
                      static_cast<long long>(row[0].AsInt()),
                      static_cast<long long>(row[1].AsInt()),
                      static_cast<long long>(row[2].AsInt()),
                      static_cast<long long>(row[3].AsInt()));
        }
      });
  if (!emitted.ok()) {
    std::printf("error: %s\n", emitted.status().ToString().c_str());
    return 1;
  }
  std::printf("\nTotal window rows emitted: %zu\n", emitted.value().size());

  // A query on the same stream *without* STREAM reads existing history.
  auto history =
      conn.Query("SELECT COUNT(*) AS events_so_far FROM Orders");
  std::printf("Without STREAM (existing records): %s rows -> %s\n",
              "1", history.value().rows[0][0].ToString().c_str());
  return 0;
}
