// Figure 2 end-to-end: optimizing a query across heterogeneous engines.
//
// Orders live in a (simulated) Splunk instance; Products in a MySQL-dialect
// JDBC backend. The optimizer pushes the WHERE clause into Splunk and then —
// exploiting Splunk's ability to perform lookups into MySQL — migrates the
// join itself into the splunk convention, beating both the client-side and
// the Spark-based federation plans on cost.

#include <cstdio>

#include "adapters/jdbc/jdbc_adapter.h"
#include "adapters/spark/spark_adapter.h"
#include "adapters/splunk/splunk_adapter.h"
#include "tools/frameworks.h"

using namespace calcite;

int main() {
  TypeFactory tf;
  auto int_t = tf.CreateSqlType(SqlTypeName::kInteger);
  auto str_t = tf.CreateSqlType(SqlTypeName::kVarchar, 32);

  // --- MySQL backend with the Products table.
  auto mysql_tables = std::make_shared<Schema>();
  {
    std::vector<Row> rows;
    for (int i = 1; i <= 30; ++i) {
      rows.push_back({Value::Int(i),
                      Value::String("product-" + std::to_string(i))});
    }
    auto table = std::make_shared<MemTable>(
        tf.CreateStructType({"productId", "name"}, {int_t, str_t}),
        std::move(rows));
    Statistic stat;
    stat.row_count = 30;
    stat.unique_keys = {{0}};
    table->set_statistic(stat);
    mysql_tables->AddTable("products", table);
  }
  auto mysql = std::make_shared<RemoteSqlEngine>("mysql", SqlDialect::MySql(),
                                                 mysql_tables);

  // --- Splunk with the Orders events, able to look up into MySQL.
  auto splunk =
      std::make_shared<SplunkSchema>(std::vector<RemoteSqlEnginePtr>{mysql});
  {
    std::vector<Row> rows;
    for (int i = 0; i < 500; ++i) {
      rows.push_back({Value::Int(1700000000 + i), Value::Int(i % 30 + 1),
                      Value::Int(i % 50)});
    }
    splunk->AddTable("orders",
                     std::make_shared<MemTable>(
                         tf.CreateStructType({"rowtime", "productId", "units"},
                                             {int_t, int_t, int_t}),
                         std::move(rows)));
  }

  auto root = std::make_shared<Schema>();
  root->AddSubSchema("splunk", splunk);
  auto jdbc_schema = std::make_shared<JdbcSchema>(mysql);
  root->AddSubSchema("mysql", jdbc_schema);

  Connection::Config config{root};
  config.extra_rules = SparkAdapter::Rules(
      {SplunkSchema::SplunkConvention(), jdbc_schema->ScanConvention()});
  Connection conn(config);

  const std::string sql =
      "SELECT p.name, o.units FROM splunk.orders o "
      "JOIN mysql.products p ON o.productId = p.productId "
      "WHERE o.units > 40";

  std::printf("Query (the paper's Figure 2):\n  %s\n\n", sql.c_str());
  auto logical = conn.Explain(sql, false, true);
  std::printf("Before optimization (join in logical convention):\n%s\n",
              logical.value().c_str());
  auto physical = conn.Explain(sql, true, true);
  std::printf("After optimization (join pushed into Splunk):\n%s\n",
              physical.value().c_str());

  auto result = conn.Query(sql);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("Rows returned: %zu\n\n", result.value().rows.size());

  std::printf("SQL statements Splunk sent to MySQL (ODBC lookups):\n");
  size_t shown = 0;
  for (const std::string& stmt : mysql->statement_log()) {
    if (shown++ == 5) {
      std::printf("  ... (%zu total)\n", mysql->statement_log().size());
      break;
    }
    std::printf("  %s\n", stmt.c_str());
  }
  return 0;
}
