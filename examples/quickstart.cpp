// Quickstart: embed the framework as a library (the Figure 1 loop).
//
// Builds an in-memory schema, then runs SQL through the full pipeline:
// parse -> validate -> convert -> optimize (heuristic + cost-based phases)
// -> execute on the enumerable engine.

#include <cstdio>

#include "schema/schema.h"
#include "schema/table.h"
#include "tools/frameworks.h"

using namespace calcite;

int main() {
  TypeFactory tf;
  auto int_t = tf.CreateSqlType(SqlTypeName::kInteger);
  auto str_t = tf.CreateSqlType(SqlTypeName::kVarchar, 32);
  auto dbl_t = tf.CreateSqlType(SqlTypeName::kDouble);

  auto schema = std::make_shared<Schema>();
  schema->AddTable(
      "emps",
      std::make_shared<MemTable>(
          tf.CreateStructType({"empid", "deptno", "name", "salary"},
                              {int_t, int_t, str_t, dbl_t}),
          std::vector<Row>{
              {Value::Int(100), Value::Int(10), Value::String("Bill"),
               Value::Double(10000)},
              {Value::Int(110), Value::Int(10), Value::String("Theodore"),
               Value::Double(11500)},
              {Value::Int(150), Value::Int(20), Value::String("Sebastian"),
               Value::Double(7000)},
              {Value::Int(200), Value::Int(30), Value::String("Anna"),
               Value::Double(9000)},
          }));

  Connection conn{Connection::Config{schema}};

  const std::string sql =
      "SELECT deptno, COUNT(*) AS c, AVG(salary) AS avg_sal "
      "FROM emps WHERE salary > 7500 GROUP BY deptno ORDER BY deptno";

  std::printf("Query:\n  %s\n\n", sql.c_str());

  auto logical = conn.Explain(sql, /*optimized=*/false);
  std::printf("Logical plan:\n%s\n", logical.value().c_str());

  auto physical = conn.Explain(sql, /*optimized=*/true, true);
  std::printf("Optimized plan (with traits):\n%s\n", physical.value().c_str());

  auto result = conn.Query(sql);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("Result:\n%s\n", result.value().ToTable().c_str());
  return 0;
}
