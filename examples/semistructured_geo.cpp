// §7.1 + §7.3: semi-structured data (a MongoDB-style document collection
// exposed through a _MAP column and a relational view) and geospatial SQL
// (the Amsterdam containment query).

#include <cstdio>

#include "adapters/mongo/mongo_adapter.h"
#include "tools/frameworks.h"
#include "util/json.h"

using namespace calcite;

int main() {
  // --- Documents (the paper's zips collection).
  std::vector<JsonValue> docs;
  const char* zips[] = {
      R"({"city": "AMSTERDAM", "pop": 821752, "loc": [4.9, 52.37]})",
      R"({"city": "ROTTERDAM", "pop": 623652, "loc": [4.47, 51.92]})",
      R"({"city": "THE HAGUE", "pop": 514861, "loc": [4.3, 52.07]})",
      R"({"city": "UTRECHT", "pop": 345080, "loc": [5.12, 52.09]})",
  };
  for (const char* text : zips) docs.push_back(ParseJson(text).value());

  auto mongo = std::make_shared<MongoSchema>();
  mongo->AddTable("zips", std::make_shared<MongoTable>(std::move(docs)));

  auto root = std::make_shared<Schema>();
  root->AddSubSchema("mongo_raw", mongo);
  Connection conn{Connection::Config{root}};

  // The paper's view (§7.1), verbatim except for the schema name.
  const std::string view_sql =
      "SELECT CAST(_MAP['city'] AS VARCHAR(20)) AS city, "
      "CAST(_MAP['loc'][0] AS FLOAT) AS longitude, "
      "CAST(_MAP['loc'][1] AS FLOAT) AS latitude "
      "FROM mongo_raw.zips";
  std::printf("Relational view over documents:\n  %s\n\n", view_sql.c_str());
  auto relational = conn.Query(view_sql + " ORDER BY city");
  std::printf("%s\n", relational.value().ToTable().c_str());

  // --- Geospatial (§7.3): which city footprint contains which point, and
  // the Amsterdam-in-country query.
  TypeFactory tf;
  auto str_t = tf.CreateSqlType(SqlTypeName::kVarchar, 64);
  auto country = std::make_shared<MemTable>(
      tf.CreateStructType({"name", "boundary"}, {str_t, str_t}),
      std::vector<Row>{
          {Value::String("Netherlands"),
           Value::String("POLYGON ((3.3 50.7, 7.2 50.7, 7.2 53.6, 3.3 53.6, "
                         "3.3 50.7))")},
          {Value::String("Belgium"),
           Value::String("POLYGON ((2.5 49.5, 6.4 49.5, 6.4 51.5, 2.5 51.5, "
                         "2.5 49.5))")},
      });
  root->AddTable("country", country);

  const std::string geo_sql =
      "SELECT name FROM ("
      "  SELECT name, "
      "  ST_GeomFromText('POLYGON ((4.82 52.43, 4.97 52.43, 4.97 52.33, "
      "4.82 52.33, 4.82 52.43))') AS amsterdam, "
      "  ST_GeomFromText(boundary) AS country "
      "  FROM country"
      ") AS t WHERE ST_Contains(country, amsterdam)";
  std::printf("Geospatial query (the paper's §7.3 example):\n  %s\n\n",
              geo_sql.c_str());
  auto geo = conn.Query(geo_sql);
  if (!geo.ok()) {
    std::printf("error: %s\n", geo.status().ToString().c_str());
    return 1;
  }
  std::printf("Country containing Amsterdam: %s\n",
              geo.value().rows[0][0].AsString().c_str());

  // Bonus: joining documents with geometry — distance from each city to
  // Amsterdam's centre.
  auto distance = conn.Query(
      "SELECT city, ST_Distance(ST_MakePoint(longitude, latitude), "
      "ST_MakePoint(4.9, 52.37)) AS d FROM (" +
      view_sql + ") AS cities ORDER BY d");
  std::printf("\nCities by distance from Amsterdam centre:\n%s",
              distance.value().ToTable().c_str());
  return 0;
}
