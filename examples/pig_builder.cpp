// The §3 example: expressing an Apache Pig script through the relational
// expression builder, for systems that have their own query language and
// only want the optimizer.
//
//   emp = LOAD 'employee_data' AS (deptno, sal);
//   emp_by_dept = GROUP emp by (deptno);
//   emp_agg = FOREACH emp_by_dept GENERATE GROUP as deptno,
//       COUNT(emp.sal) AS c, SUM(emp.sal) as s;
//   dump emp_agg;

#include <cstdio>

#include "plan/programs.h"
#include "rel/rel_writer.h"
#include "rules/core_rules.h"
#include "adapters/enumerable/enumerable_rules.h"
#include "schema/table.h"
#include "tools/rel_builder.h"

using namespace calcite;

int main() {
  TypeFactory tf;
  auto int_t = tf.CreateSqlType(SqlTypeName::kInteger);

  auto schema = std::make_shared<Schema>();
  schema->AddTable(
      "employee_data",
      std::make_shared<MemTable>(
          tf.CreateStructType({"deptno", "sal"}, {int_t, int_t}),
          std::vector<Row>{
              {Value::Int(10), Value::Int(1000)},
              {Value::Int(10), Value::Int(1500)},
              {Value::Int(20), Value::Int(500)},
              {Value::Int(20), Value::Int(700)},
              {Value::Int(30), Value::Int(2000)},
          }));

  // The paper's builder expression, almost verbatim:
  //   final RelNode node = builder
  //     .scan("employee_data")
  //     .aggregate(builder.groupKey("deptno"),
  //                builder.count(false, "c"),
  //                builder.sum(false, "s", builder.field("sal")))
  //     .build();
  RelBuilder builder(schema);
  builder.Scan("employee_data");
  auto node = builder
                  .Aggregate(builder.GroupKey({"deptno"}),
                             {builder.Count(false, "c"),
                              builder.Sum(false, "s", builder.Field("sal"))})
                  .Build();
  if (!node.ok()) {
    std::printf("builder error: %s\n", node.status().ToString().c_str());
    return 1;
  }
  std::printf("Algebra produced by the builder:\n%s\n",
              ExplainPlan(node.value()).c_str());

  // Optimize + execute, as the host system's runtime would.
  PlannerContext context;
  Program program = Program::Standard(StandardLogicalRules(),
                                      EnumerableConverterRules(),
                                      RelTraitSet(Convention::Enumerable()));
  auto physical = program.Run(node.value(), &context);
  if (!physical.ok()) {
    std::printf("planner error: %s\n", physical.status().ToString().c_str());
    return 1;
  }
  std::printf("Physical plan:\n%s\n", ExplainPlan(physical.value()).c_str());

  auto rows = physical.value()->Execute();
  std::printf("dump emp_agg;\n");
  for (const Row& row : rows.value()) {
    std::printf("  %s\n", RowToString(row).c_str());
  }
  return 0;
}
