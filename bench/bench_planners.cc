// Experiment E3: planner engines and fixpoint modes (§6).
//
// Compares (i) the exhaustive cost-based fixpoint, (ii) the δ-threshold
// heuristic fixpoint ("stop the search when the plan cost has not improved
// by more than a given threshold δ in the last planner iterations"), and
// the rule-only heuristic (Hep) engine, on join-reordering workloads of
// increasing size.

#include <benchmark/benchmark.h>

#include "adapters/enumerable/enumerable_rules.h"
#include "bench_common.h"
#include "plan/hep_planner.h"
#include "plan/volcano_planner.h"
#include "rules/core_rules.h"
#include "tools/rel_builder.h"

namespace calcite {
namespace {

RelNodePtr BuildJoinChain(const SchemaPtr& schema, int joins) {
  RelBuilder b(schema);
  b.Scan("sales");
  for (int i = 0; i < joins; ++i) {
    b.Scan("products");
    b.Join(JoinType::kInner,
           b.Equals(b.Field(1, "productId"), b.Field(0, "productId")));
  }
  return b.Build().value();
}

std::vector<RelOptRulePtr> ReorderRules() {
  std::vector<RelOptRulePtr> rules = JoinReorderRules();
  for (auto& r : EnumerableConverterRules()) rules.push_back(r);
  return rules;
}

void BM_VolcanoExhaustive(benchmark::State& state) {
  SchemaPtr schema = bench::MakeSalesSchema(10000, 100);
  RelNodePtr plan = BuildJoinChain(schema, static_cast<int>(state.range(0)));
  double cost = 0;
  int fired = 0;
  for (auto _ : state) {
    PlannerContext context;
    VolcanoPlanner::Options options;
    options.exhaustive = true;
    VolcanoPlanner planner(ReorderRules(), &context, options);
    auto optimized =
        planner.Optimize(plan, RelTraitSet(Convention::Enumerable()));
    benchmark::DoNotOptimize(optimized);
    cost = planner.best_cost().Magnitude();
    fired = planner.rule_fire_count();
  }
  state.counters["plan_cost"] = cost;
  state.counters["rule_firings"] = fired;
}
BENCHMARK(BM_VolcanoExhaustive)->Arg(2)->Arg(3)->Arg(4);

void BM_VolcanoDeltaThreshold(benchmark::State& state) {
  SchemaPtr schema = bench::MakeSalesSchema(10000, 100);
  RelNodePtr plan = BuildJoinChain(schema, static_cast<int>(state.range(0)));
  double cost = 0;
  int fired = 0;
  for (auto _ : state) {
    PlannerContext context;
    VolcanoPlanner::Options options;
    options.exhaustive = false;
    options.cost_improvement_delta = 0.05;
    options.delta_window = 20;
    VolcanoPlanner planner(ReorderRules(), &context, options);
    auto optimized =
        planner.Optimize(plan, RelTraitSet(Convention::Enumerable()));
    benchmark::DoNotOptimize(optimized);
    cost = planner.best_cost().Magnitude();
    fired = planner.rule_fire_count();
  }
  state.counters["plan_cost"] = cost;
  state.counters["rule_firings"] = fired;
}
BENCHMARK(BM_VolcanoDeltaThreshold)->Arg(2)->Arg(3)->Arg(4);

void BM_HeuristicHepPlanner(benchmark::State& state) {
  SchemaPtr schema = bench::MakeSalesSchema(10000, 100);
  RelNodePtr plan = BuildJoinChain(schema, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    PlannerContext context;
    HepPlanner planner(StandardLogicalRules(), &context);
    auto optimized = planner.Optimize(plan);
    benchmark::DoNotOptimize(optimized);
  }
}
BENCHMARK(BM_HeuristicHepPlanner)->Arg(2)->Arg(3)->Arg(4);

}  // namespace
}  // namespace calcite
