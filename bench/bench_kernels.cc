// Per-kernel microbenchmarks for the columnar hot-path loops: comparison
// and arithmetic expression kernels (RexColumnar::AppendEvalColumn), leaf
// predicate narrowing (NarrowByScanPredicate), selection refill after a
// dense predicate evaluation (RexColumnar::NarrowSelection), and group-id
// resolution in the columnar hash aggregate (ColumnarAggBuilder::Feed).
//
// Each benchmark drives exactly one kernel over a pre-built zero-copy
// column slice, so the timings isolate the loop the SIMD work targets.
// BM_FusedExprSweep additionally diffs the tree-fusing bytecode
// interpreter (FusedExpr) against the per-node RexColumnar walk on the
// same multi-node expression, at the interpreter's block size and at the
// full slice.
//
// The file still builds in a `git worktree` of the PR's base commit for
// the "before" capture (scripts/bench.sh --bin bench_kernels): the fused
// sweep is gated on __has_include of the fusion header, and everything
// else uses only base-commit APIs.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <random>
#include <vector>

#include "adapters/enumerable/columnar_agg.h"
#include "exec/arena.h"
#include "exec/column_batch.h"
#include "rex/rex_builder.h"
#include "rex/rex_columnar.h"
#if __has_include("rex/rex_fuse.h")
#include "rex/rex_fuse.h"
#define CALCITE_BENCH_HAS_FUSE 1
#endif
#include "type/rel_data_type.h"
#include "type/value.h"

namespace calcite {
namespace {

constexpr size_t kRows = 65536;
constexpr int kNullPct = 12;
constexpr int64_t kIntRange = 1000;  // ints uniform in [0, kIntRange)

// Column layout of the bench table:
//   $0 id INT NOT NULL   (row index)
//   $1 a  INT?           (~12% NULL, uniform [0, 1000))
//   $2 b  INT?           (~12% NULL, uniform [0, 1000))
//   $3 x  DOUBLE?        (~12% NULL, uniform [0.0, 1000.0))
//   $4 g  INT NOT NULL   (group key, 64 distinct values)
//   $5 gd DOUBLE NOT NULL (group key, 64 distinct values)
//   $6 gs VARCHAR NOT NULL (group key, 64 distinct values)
struct BenchTable {
  TypeFactory tf;
  RelDataTypePtr row_type;
  std::vector<Row> rows;
  TableColumnsPtr columns;
  ColumnBatch batch;  // zero-copy slice over all rows, no selection
  SelectionVector identity;

  BenchTable() {
    auto int_t = tf.CreateSqlType(SqlTypeName::kInteger);
    auto int_null = tf.CreateSqlType(SqlTypeName::kInteger, -1, true);
    auto dbl_t = tf.CreateSqlType(SqlTypeName::kDouble);
    auto dbl_null = tf.CreateSqlType(SqlTypeName::kDouble, -1, true);
    auto str_t = tf.CreateSqlType(SqlTypeName::kVarchar, 16);
    row_type = tf.CreateStructType(
        {"id", "a", "b", "x", "g", "gd", "gs"},
        {int_t, int_null, int_null, dbl_null, int_t, dbl_t, str_t});
    std::mt19937 rng(20260807);
    std::uniform_int_distribution<int> pct(0, 99);
    std::uniform_int_distribution<int64_t> ival(0, kIntRange - 1);
    std::uniform_real_distribution<double> dval(0.0, 1000.0);
    rows.reserve(kRows);
    for (size_t i = 0; i < kRows; ++i) {
      const int64_t grp = static_cast<int64_t>(i % 64);
      Row row;
      row.push_back(Value::Int(static_cast<int64_t>(i)));
      row.push_back(pct(rng) < kNullPct ? Value::Null()
                                        : Value::Int(ival(rng)));
      row.push_back(pct(rng) < kNullPct ? Value::Null()
                                        : Value::Int(ival(rng)));
      row.push_back(pct(rng) < kNullPct ? Value::Null()
                                        : Value::Double(dval(rng)));
      row.push_back(Value::Int(grp));
      row.push_back(Value::Double(static_cast<double>(grp) + 0.5));
      row.push_back(Value::String("grp-" + std::to_string(grp)));
      rows.push_back(std::move(row));
    }
    columns = TableColumns::Build(rows, *row_type);
    batch = SliceTableColumns(columns, 0, kRows, columns);
    identity.resize(kRows);
    for (size_t i = 0; i < kRows; ++i) {
      identity[i] = static_cast<uint32_t>(i);
    }
  }
};

const BenchTable& Table() {
  static const BenchTable* table = new BenchTable();
  return *table;
}

RexNodePtr Call(const RexBuilder& rex, OpKind op,
                std::vector<RexNodePtr> operands) {
  auto call = rex.MakeCall(op, std::move(operands));
  if (!call.ok()) std::abort();
  return call.value();
}

/// Times AppendEvalColumn of `expr` over the full slice; one fresh arena
/// per iteration so kernel output allocation is included on both sides.
void RunEvalBench(benchmark::State& state, const RexNodePtr& expr) {
  const BenchTable& t = Table();
  size_t rows_processed = 0;
  for (auto _ : state) {
    ColumnBatch out;
    out.arena = std::make_shared<Arena>();
    out.ShareStorage(t.batch);
    out.num_rows = t.batch.ActiveCount();
    Status s = RexColumnar::AppendEvalColumn(expr, t.batch, &out);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    benchmark::DoNotOptimize(out.cols.data());
    rows_processed += kRows;
  }
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(rows_processed), benchmark::Counter::kIsRate);
}

// Ref-vs-ref int64 comparison kernel: $1 < $2 (both ~12% NULL).
void BM_KernelCompareI64(benchmark::State& state) {
  RexBuilder rex;
  const BenchTable& t = Table();
  RexNodePtr expr =
      Call(rex, OpKind::kLessThan,
           {rex.MakeInputRef(t.row_type, 1), rex.MakeInputRef(t.row_type, 2)});
  RunEvalBench(state, expr);
}
BENCHMARK(BM_KernelCompareI64)->Unit(benchmark::kMicrosecond);

// Ref-vs-literal double comparison kernel: $3 < 500.0.
void BM_KernelCompareF64Lit(benchmark::State& state) {
  RexBuilder rex;
  const BenchTable& t = Table();
  RexNodePtr expr = Call(rex, OpKind::kLessThan,
                         {rex.MakeInputRef(t.row_type, 3),
                          rex.MakeDoubleLiteral(500.0)});
  RunEvalBench(state, expr);
}
BENCHMARK(BM_KernelCompareF64Lit)->Unit(benchmark::kMicrosecond);

// Int64 arithmetic kernel with NULL folding: $1 * $2 + $1.
void BM_KernelArithI64(benchmark::State& state) {
  RexBuilder rex;
  const BenchTable& t = Table();
  RexNodePtr a = rex.MakeInputRef(t.row_type, 1);
  RexNodePtr b = rex.MakeInputRef(t.row_type, 2);
  RexNodePtr expr =
      Call(rex, OpKind::kPlus, {Call(rex, OpKind::kTimes, {a, b}), a});
  RunEvalBench(state, expr);
}
BENCHMARK(BM_KernelArithI64)->Unit(benchmark::kMicrosecond);

// Leaf predicate pushdown: NarrowByScanPredicate over the raw int column,
// identity candidates, threshold swept so ~10% / ~50% / ~90% of rows pass.
void BM_KernelNarrowPredicate(benchmark::State& state) {
  const BenchTable& t = Table();
  ScanPredicate pred;
  pred.kind = ScanPredicate::Kind::kLessThan;
  pred.column = 1;
  pred.literal = Value::Int(state.range(0));
  size_t rows_processed = 0;
  SelectionVector sel;
  for (auto _ : state) {
    sel = t.identity;
    NarrowByScanPredicate(pred, t.batch, &sel);
    benchmark::DoNotOptimize(sel.data());
    rows_processed += kRows;
  }
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(rows_processed), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_KernelNarrowPredicate)
    ->Arg(100)
    ->Arg(500)
    ->Arg(900)
    ->Unit(benchmark::kMicrosecond);

// Dense predicate + selection refill: $1 < $2 is not a scan-shape
// comparison, so NarrowSelection evaluates it densely and rebuilds the
// selection from the pass mask (the bitmask -> selection expansion).
void BM_KernelSelectionRefill(benchmark::State& state) {
  RexBuilder rex;
  const BenchTable& t = Table();
  RexNodePtr pred =
      Call(rex, OpKind::kLessThan,
           {rex.MakeInputRef(t.row_type, 1), rex.MakeInputRef(t.row_type, 2)});
  size_t rows_processed = 0;
  SelectionVector sel;
  for (auto _ : state) {
    sel = t.identity;
    ArenaPtr scratch = std::make_shared<Arena>();
    Status s = RexColumnar::NarrowSelection(pred, t.batch, scratch, &sel);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    benchmark::DoNotOptimize(sel.data());
    rows_processed += kRows;
  }
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(rows_processed), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_KernelSelectionRefill)->Unit(benchmark::kMicrosecond);

#ifdef CALCITE_BENCH_HAS_FUSE
// Fused-vs-per-node sweep over both FusedExpr entry points, each on a
// 3+-operator tree, at the pipeline batch size (1024: every iteration
// processes all 64 consecutive 1024-row slices, exactly what a
// batch-1024 pipeline does — and enough work per measurement to be
// stable on a shared box) and at the full 64K slice.
//
// narrow:0 — AppendEvalColumn of the five-operator mixed-type tree
// (($1 + $2) * $3) + (($1 - $2) * 0.5). The per-node walk materializes
// one arena column per operator plus one per implicit int64→double
// widening and one per broadcast literal (seven temporaries total),
// re-reading each from memory; the fused interpreter runs the whole
// tree register-to-register in 1024-row blocks (casts convert
// in-register, the literal folds into an immediate) and writes only the
// final column. Each batch's output goes to a fresh arena per the
// RunEvalBench convention, so the per-node temporary allocations fusion
// eliminates are priced in.
//
// narrow:1 — NarrowSelection of the three-node range predicate
// $1 >= 100 AND $1 < 900. The per-node path narrows conjunct by
// conjunct: two full compare passes over the column, each followed by a
// selection filter; the fused program folds the pair into a single
// inrange.i64 interval pass and one filter — half the data traffic,
// no arena use on either side.
//
// Programs / expression trees are compiled once and reused across
// batches, as pipelines do.
void BM_FusedExprSweep(benchmark::State& state) {
  RexBuilder rex;
  const BenchTable& t = Table();
  RexNodePtr a = rex.MakeInputRef(t.row_type, 1);
  RexNodePtr b = rex.MakeInputRef(t.row_type, 2);
  RexNodePtr x = rex.MakeInputRef(t.row_type, 3);
  RexNodePtr left =
      Call(rex, OpKind::kTimes, {Call(rex, OpKind::kPlus, {a, b}), x});
  RexNodePtr right =
      Call(rex, OpKind::kTimes,
           {Call(rex, OpKind::kMinus, {a, b}), rex.MakeDoubleLiteral(0.5)});
  RexNodePtr expr = Call(rex, OpKind::kPlus, {left, right});
  RexNodePtr pred =
      Call(rex, OpKind::kAnd,
           {Call(rex, OpKind::kGreaterThanOrEqual,
                 {a, rex.MakeIntLiteral(100)}),
            Call(rex, OpKind::kLessThan, {a, rex.MakeIntLiteral(900)})});
  const bool fused = state.range(0) != 0;
  const size_t batch_rows = static_cast<size_t>(state.range(1));
  const bool narrowing = state.range(2) != 0;
  std::vector<ColumnBatch> batches;
  for (size_t base = 0; base < kRows; base += batch_rows) {
    batches.push_back(SliceTableColumns(t.columns, base, batch_rows,
                                        t.columns));
  }
  SelectionVector identity(batch_rows);
  for (size_t i = 0; i < batch_rows; ++i) {
    identity[i] = static_cast<uint32_t>(i);
  }
  FusedExpr fexpr(expr);
  FusedExpr fpred(pred);
  size_t rows_processed = 0;
  SelectionVector sel;
  for (auto _ : state) {
    for (const ColumnBatch& in : batches) {
      if (narrowing) {
        sel = identity;
        ArenaPtr scratch = std::make_shared<Arena>();
        Status s = fused
                       ? fpred.NarrowSelection(in, scratch, &sel)
                       : RexColumnar::NarrowSelection(pred, in, scratch, &sel);
        if (!s.ok()) state.SkipWithError(s.ToString().c_str());
        benchmark::DoNotOptimize(sel.data());
      } else {
        ColumnBatch out;
        out.arena = std::make_shared<Arena>();
        out.ShareStorage(in);
        out.num_rows = in.ActiveCount();
        Status s = fused ? fexpr.AppendEvalColumn(in, &out)
                         : RexColumnar::AppendEvalColumn(expr, in, &out);
        if (!s.ok()) state.SkipWithError(s.ToString().c_str());
        benchmark::DoNotOptimize(out.cols.data());
      }
    }
    rows_processed += kRows;
  }
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(rows_processed), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FusedExprSweep)
    ->ArgNames({"fused", "batch", "narrow"})
    ->Args({0, 1024, 0})
    ->Args({1, 1024, 0})
    ->Args({0, 65536, 0})
    ->Args({1, 65536, 0})
    ->Args({0, 1024, 1})
    ->Args({1, 1024, 1})
    ->Args({0, 65536, 1})
    ->Args({1, 65536, 1})
    ->Unit(benchmark::kMicrosecond);
#endif  // CALCITE_BENCH_HAS_FUSE

// Group-id resolution in the columnar hash aggregate: SUM($1) GROUP BY the
// key column given by Arg (4 = int64, 5 = double, 6 = string; 64 distinct
// values each). Feed dominates in resolve + typed adds; the builder is
// reused so steady-state lookups are measured, not growth.
void BM_KernelHashGroupResolve(benchmark::State& state) {
  const BenchTable& t = Table();
  AggregateCall call;
  call.kind = AggKind::kSum;
  call.args = {1};
  call.name = "s";
  call.type = t.tf.CreateSqlType(SqlTypeName::kInteger, -1, true);
  auto builder = ColumnarAggBuilder::TryCreate(
      {static_cast<int>(state.range(0))}, {call});
  if (builder == nullptr) {
    state.SkipWithError("ColumnarAggBuilder::TryCreate returned null");
    return;
  }
  size_t rows_processed = 0;
  for (auto _ : state) {
    Status s = builder->Feed(t.batch);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    rows_processed += kRows;
  }
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(rows_processed), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_KernelHashGroupResolve)
    ->Arg(4)
    ->Arg(5)
    ->Arg(6)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace calcite
