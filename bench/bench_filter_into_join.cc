// Experiment F4 (Figure 4): FilterIntoJoinRule before/after.
//
// The paper: "This optimization can significantly reduce query execution
// time since we do not need to perform the join for rows which do match the
// predicate." We run the §6 query with the logical rewrite phase disabled
// (filter stays above the join, Figure 4a) and enabled (filter pushed below,
// Figure 4b) and measure end-to-end execution.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace calcite {
namespace {

const char* kQuery =
    "SELECT products.name, COUNT(*) "
    "FROM sales JOIN products USING (productId) "
    "WHERE sales.discount IS NOT NULL "
    "GROUP BY products.name "
    "ORDER BY COUNT(*) DESC";

void BM_Figure4a_FilterAboveJoin(benchmark::State& state) {
  SchemaPtr schema = bench::MakeSalesSchema(static_cast<int>(state.range(0)),
                                            50);
  Connection::Config config{schema};
  config.skip_logical_phase = true;  // no FilterIntoJoinRule
  Connection conn(config);
  auto logical = conn.ParseQuery(kQuery);
  auto physical = conn.OptimizePlan(logical.value());
  for (auto _ : state) {
    auto rows = physical.value()->Execute();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Figure4a_FilterAboveJoin)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_Figure4b_FilterIntoJoin(benchmark::State& state) {
  SchemaPtr schema = bench::MakeSalesSchema(static_cast<int>(state.range(0)),
                                            50);
  Connection conn{Connection::Config{schema}};
  auto logical = conn.ParseQuery(kQuery);
  auto physical = conn.OptimizePlan(logical.value());
  for (auto _ : state) {
    auto rows = physical.value()->Execute();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Figure4b_FilterIntoJoin)->Arg(1000)->Arg(10000)->Arg(50000);

}  // namespace
}  // namespace calcite
