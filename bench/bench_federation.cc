// Experiment F2 (Figure 2): cross-backend optimization.
//
// Reproduces the plan race of Figure 2: the same federated query planned
// with (a) only client-side (enumerable) operators, (b) Spark as an external
// engine, and (c) the Splunk lookup-join rule. The reported plan_cost shows
// the ordering the paper describes: the Splunk-convention join wins.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "rel/rel_writer.h"

namespace calcite {
namespace {

const char* kQuery =
    "SELECT p.name, o.units FROM splunk.orders o "
    "JOIN mysql.products p ON o.productId = p.productId "
    "WHERE o.units > 40";

void Report(const std::string& label, Connection* conn) {
  auto plan = conn->Explain(kQuery, true, true);
  bench::PrintOnce("--- Figure 2 plan with " + label + " ---\n" +
                   (plan.ok() ? plan.value() : plan.status().ToString()) +
                   "\n");
}

void BM_Plan_EnumerableOnly(benchmark::State& state) {
  // Lookup rule disabled: plain Splunk schema without lookup targets.
  auto catalog = bench::MakeFederationCatalog(2000, 100);
  auto splunk = std::make_shared<SplunkSchema>();
  auto old = catalog.root->GetSubSchema("splunk");
  splunk->AddTable("orders", old->GetTable("orders"));
  auto root = std::make_shared<Schema>();
  root->AddSubSchema("splunk", splunk);
  root->AddSubSchema("mysql", catalog.jdbc);
  Connection conn{Connection::Config{root}};
  Report("client-side join (enumerable)", &conn);
  for (auto _ : state) {
    auto result = conn.Query(kQuery);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Plan_EnumerableOnly);

void BM_Plan_WithSparkAlternative(benchmark::State& state) {
  auto catalog = bench::MakeFederationCatalog(2000, 100);
  auto splunk = std::make_shared<SplunkSchema>();
  auto old = catalog.root->GetSubSchema("splunk");
  splunk->AddTable("orders", old->GetTable("orders"));
  auto root = std::make_shared<Schema>();
  root->AddSubSchema("splunk", splunk);
  root->AddSubSchema("mysql", catalog.jdbc);
  Connection::Config config{root};
  config.extra_rules = SparkAdapter::Rules(
      {SplunkSchema::SplunkConvention(), catalog.jdbc->ScanConvention()});
  Connection conn(config);
  Report("Spark as external engine", &conn);
  for (auto _ : state) {
    auto result = conn.Query(kQuery);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Plan_WithSparkAlternative);

void BM_Plan_WithSplunkLookupJoin(benchmark::State& state) {
  auto catalog = bench::MakeFederationCatalog(2000, 100);
  Connection::Config config{catalog.root};
  config.extra_rules = SparkAdapter::Rules(
      {SplunkSchema::SplunkConvention(), catalog.jdbc->ScanConvention()});
  Connection conn(config);
  Report("Splunk lookup join (paper's efficient plan)", &conn);
  for (auto _ : state) {
    auto result = conn.Query(kQuery);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Plan_WithSplunkLookupJoin);

}  // namespace
}  // namespace calcite
