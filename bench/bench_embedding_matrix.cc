// Experiment T1 (Table 1): systems embedding Calcite.
//
// Table 1 lists, per embedding system, which framework components it uses:
// the JDBC-ish connection facade, the SQL parser+validator, the relational
// algebra, and the execution engine. Each row below is an *integration
// configuration* exercised live against the framework; the printed matrix
// is regenerated from those runs (a ✓ appears only if the path actually
// worked). Timings measure each configuration's end-to-end cost.

#include <benchmark/benchmark.h>

#include "adapters/enumerable/enumerable_rules.h"
#include "bench_common.h"
#include "plan/programs.h"
#include "rules/core_rules.h"
#include "sql/parser.h"
#include "sql/sql_to_rel.h"
#include "tools/rel_builder.h"

namespace calcite {
namespace {

struct MatrixRow {
  std::string system;
  bool jdbc;      // uses the connection facade
  bool sql;       // uses parser+validator
  bool algebra;   // uses the relational algebra / optimizer
  bool engine;    // executes on the built-in (enumerable) engine
};

std::vector<MatrixRow>& Matrix() {
  static std::vector<MatrixRow>* rows = new std::vector<MatrixRow>();
  return *rows;
}

void PrintMatrix() {
  std::string out =
      "--- Table 1 (regenerated): integration configurations ---\n";
  out += "configuration              | JDBC | SQL parser | algebra | engine\n";
  for (const MatrixRow& row : Matrix()) {
    std::string name = row.system;
    name.resize(26, ' ');
    out += name;
    out += " |  ";
    out += row.jdbc ? "x" : " ";
    out += "   |     ";
    out += row.sql ? "x" : " ";
    out += "      |    ";
    out += row.algebra ? "x" : " ";
    out += "    |   ";
    out += row.engine ? "x" : " ";
    out += "\n";
  }
  bench::PrintOnce(out);
}

// Configuration A — "full stack" (like Drill/Solr/Phoenix): connection
// facade + SQL parser/validator + algebra + enumerable execution.
void BM_Embed_FullStack(benchmark::State& state) {
  SchemaPtr schema = bench::MakeSalesSchema(2000, 50);
  Connection conn{Connection::Config{schema}};
  bool ok = true;
  for (auto _ : state) {
    auto result = conn.Query(
        "SELECT productId, SUM(units) FROM sales GROUP BY productId");
    ok = ok && result.ok();
    benchmark::DoNotOptimize(result);
  }
  if (Matrix().empty() || Matrix().back().system != "full stack (Drill-like)")
    Matrix().push_back({"full stack (Drill-like)", true, true, ok, ok});
  PrintMatrix();
}
BENCHMARK(BM_Embed_FullStack);

// Configuration B — "own parser" (like Hive): the host system parses its
// own language, builds algebra directly, optimizes with our planner, and
// executes on its own engine (simulated by direct result consumption).
void BM_Embed_OwnParserOwnEngine(benchmark::State& state) {
  SchemaPtr schema = bench::MakeSalesSchema(2000, 50);
  bool ok = true;
  for (auto _ : state) {
    RelBuilder b(schema);
    b.Scan("sales");
    b.Filter(b.Call(OpKind::kGreaterThan, {b.Field("units"), b.Literal(int64_t{5})}));
    auto node = b.Aggregate(b.GroupKey({"productId"}),
                            {b.Count(false, "c")})
                    .Build();
    PlannerContext context;
    Program program = Program::Standard(StandardLogicalRules(),
                                        EnumerableConverterRules(),
                                        RelTraitSet(Convention::Enumerable()));
    auto physical = program.Run(node.value(), &context);
    ok = ok && physical.ok();
    benchmark::DoNotOptimize(physical);
  }
  if (Matrix().empty() || Matrix().back().system != "own parser (Hive-like)")
    Matrix().push_back({"own parser (Hive-like)", false, false, ok, false});
  PrintMatrix();
}
BENCHMARK(BM_Embed_OwnParserOwnEngine);

// Configuration C — "streaming SQL" (like Flink/Storm/Samza): STREAM
// queries through the parser+validator+algebra, executed natively.
void BM_Embed_StreamingSql(benchmark::State& state) {
  auto& tf = bench::Tf();
  auto ts_t = tf.CreateSqlType(SqlTypeName::kTimestamp);
  auto int_t = tf.CreateSqlType(SqlTypeName::kInteger);
  auto orders = std::make_shared<MemTable>(
      tf.CreateStructType({"rowtime", "units"}, {ts_t, int_t}),
      std::vector<Row>{});
  // Streaming validation needs the stream bit and rowtime monotonicity;
  // reuse the stream table from src/stream through a thin local subclass.
  struct S final : Table {
    std::shared_ptr<MemTable> inner;
    RelDataTypePtr GetRowType(const TypeFactory& f) const override {
      return inner->GetRowType(f);
    }
    Statistic GetStatistic() const override {
      Statistic stat = inner->GetStatistic();
      stat.monotonic_columns = {0};
      return stat;
    }
    Result<std::vector<Row>> Scan() const override { return inner->Scan(); }
    bool IsStream() const override { return true; }
  };
  auto stream_table = std::make_shared<S>();
  stream_table->inner = orders;
  for (int i = 0; i < 5000; ++i) {
    orders->rows().push_back({Value::Int(i * 60000), Value::Int(i % 40)});
  }
  auto schema = std::make_shared<Schema>();
  schema->AddTable("Orders", stream_table);
  Connection conn{Connection::Config{schema}};
  bool ok = true;
  for (auto _ : state) {
    auto result = conn.Query(
        "SELECT STREAM TUMBLE_END(rowtime, INTERVAL '1' HOUR) AS wend, "
        "COUNT(*) FROM Orders GROUP BY TUMBLE(rowtime, INTERVAL '1' HOUR)");
    ok = ok && result.ok();
    benchmark::DoNotOptimize(result);
  }
  if (Matrix().empty() || Matrix().back().system != "streaming (Flink-like)")
    Matrix().push_back({"streaming (Flink-like)", false, true, ok, ok});
  PrintMatrix();
}
BENCHMARK(BM_Embed_StreamingSql);

// Configuration D — "SQL gateway over cubes" (like Kylin): parser+algebra,
// answering from materialization-style precomputed tables.
void BM_Embed_SqlOnly(benchmark::State& state) {
  SchemaPtr schema = bench::MakeSalesSchema(2000, 50);
  Connection conn{Connection::Config{schema}};
  bool ok = true;
  for (auto _ : state) {
    auto logical = conn.ParseQuery("SELECT COUNT(*) FROM sales");
    ok = ok && logical.ok();
    benchmark::DoNotOptimize(logical);
  }
  if (Matrix().empty() || Matrix().back().system != "parse+validate (Kylin-like)")
    Matrix().push_back({"parse+validate (Kylin-like)", false, true, true, false});
  PrintMatrix();
}
BENCHMARK(BM_Embed_SqlOnly);

}  // namespace
}  // namespace calcite
