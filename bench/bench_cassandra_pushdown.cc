// Experiment E1 (§6 prose): the Cassandra sort push-down rule and its two
// preconditions. Compares executing ORDER BY with the sort pushed into the
// (simulated) store — retrieval in clustering order — against a client-side
// EnumerableSort, and demonstrates that removing either precondition
// disables the push-down.

#include <benchmark/benchmark.h>

#include "adapters/cassandra/cassandra_adapter.h"
#include "bench_common.h"

namespace calcite {
namespace {

SchemaPtr MakeCatalog(int rows) {
  auto& tf = bench::Tf();
  auto int_t = tf.CreateSqlType(SqlTypeName::kInteger);
  auto str_t = tf.CreateSqlType(SqlTypeName::kVarchar, 32);
  std::vector<Row> data;
  for (int i = 0; i < rows; ++i) {
    data.push_back({Value::Int(i % 4 * 10 + 10), Value::Int((i * 37) % 100000),
                    Value::String("e" + std::to_string(i))});
  }
  auto table = std::make_shared<CassandraTable>(
      tf.CreateStructType({"deptno", "salary", "name"},
                          {int_t, int_t, str_t}),
      std::move(data), std::vector<int>{0}, RelCollation::Of({1}));
  auto cass = std::make_shared<CassandraSchema>();
  cass->AddTable("emps", table);
  auto root = std::make_shared<Schema>();
  root->AddSubSchema("cass", cass);
  return root;
}

void BM_SortPushedIntoCassandra(benchmark::State& state) {
  Connection conn{Connection::Config{MakeCatalog(static_cast<int>(state.range(0)))}};
  const char* sql = "SELECT * FROM cass.emps WHERE deptno = 10 ORDER BY salary";
  auto plan = conn.Explain(sql, true);
  bench::PrintOnce(std::string("--- single-partition + clustering prefix ") +
                   "(both preconditions hold) ---\n" + plan.value() + "\n");
  auto logical = conn.ParseQuery(sql);
  auto physical = conn.OptimizePlan(logical.value());
  for (auto _ : state) {
    auto rows = physical.value()->Execute();
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_SortPushedIntoCassandra)->Arg(10000)->Arg(100000);

void BM_SortClientSide_NoPartitionFilter(benchmark::State& state) {
  Connection conn{Connection::Config{MakeCatalog(static_cast<int>(state.range(0)))}};
  const char* sql = "SELECT * FROM cass.emps ORDER BY salary";
  auto plan = conn.Explain(sql, true);
  bench::PrintOnce(std::string("--- no partition filter ") +
                   "(precondition 1 violated: EnumerableSort) ---\n" +
                   plan.value() + "\n");
  auto logical = conn.ParseQuery(sql);
  auto physical = conn.OptimizePlan(logical.value());
  for (auto _ : state) {
    auto rows = physical.value()->Execute();
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_SortClientSide_NoPartitionFilter)->Arg(10000)->Arg(100000);

void BM_SortClientSide_WrongCollation(benchmark::State& state) {
  Connection conn{Connection::Config{MakeCatalog(static_cast<int>(state.range(0)))}};
  const char* sql =
      "SELECT * FROM cass.emps WHERE deptno = 10 ORDER BY name";
  auto plan = conn.Explain(sql, true);
  bench::PrintOnce(std::string("--- sort on non-clustering column ") +
                   "(precondition 2 violated: EnumerableSort) ---\n" +
                   plan.value() + "\n");
  auto logical = conn.ParseQuery(sql);
  auto physical = conn.OptimizePlan(logical.value());
  for (auto _ : state) {
    auto rows = physical.value()->Execute();
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_SortClientSide_WrongCollation)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace calcite
