// Experiment E4 (§6): materialized-view rewriting — substitution and
// lattice tiles. Measures query latency against the base tables vs. the
// same query rewritten onto a materialization / tile.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "materialize/materialized_views.h"

namespace calcite {
namespace {

const char* kAggQuery =
    "SELECT productId, COUNT(*) AS c, SUM(units) AS u FROM sales "
    "GROUP BY productId";

void BM_AggregateWithoutView(benchmark::State& state) {
  SchemaPtr schema = bench::MakeSalesSchema(static_cast<int>(state.range(0)),
                                            100);
  Connection conn{Connection::Config{schema}};
  auto logical = conn.ParseQuery(kAggQuery);
  auto physical = conn.OptimizePlan(logical.value());
  for (auto _ : state) {
    auto rows = physical.value()->Execute();
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_AggregateWithoutView)->Arg(10000)->Arg(100000);

void BM_AggregateWithExactView(benchmark::State& state) {
  SchemaPtr schema = bench::MakeSalesSchema(static_cast<int>(state.range(0)),
                                            100);
  MaterializationCatalog catalog;
  {
    Connection loader{Connection::Config{schema}};
    catalog.Register(&loader, "mv_agg", kAggQuery);
  }
  Connection::Config config{schema};
  config.materializations = &catalog;
  Connection conn(config);
  auto logical = conn.ParseQuery(kAggQuery);
  auto physical = conn.OptimizePlan(logical.value());
  for (auto _ : state) {
    auto rows = physical.value()->Execute();
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_AggregateWithExactView)->Arg(10000)->Arg(100000);

void BM_StarQueryOverLatticeTile(benchmark::State& state) {
  SchemaPtr schema = bench::MakeSalesSchema(static_cast<int>(state.range(0)),
                                            100);
  MaterializationCatalog catalog;
  Lattice lattice(
      "SELECT name, saleid, units FROM sales JOIN products USING (productId)",
      {"name", "saleid"}, "units");
  {
    Connection loader{Connection::Config{schema}};
    lattice.BuildTile(&loader, &catalog, {"name"});
  }
  Connection::Config config{schema};
  config.materializations = &catalog;
  Connection conn(config);
  const char* sql =
      "SELECT name, COUNT(*) AS cnt, SUM(units) AS sm FROM "
      "(SELECT name, saleid, units FROM sales JOIN products "
      "USING (productId)) AS fact GROUP BY name";
  auto logical = conn.ParseQuery(sql);
  auto physical = conn.OptimizePlan(logical.value());
  for (auto _ : state) {
    auto rows = physical.value()->Execute();
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_StarQueryOverLatticeTile)->Arg(10000)->Arg(100000);

void BM_StarQueryWithoutTile(benchmark::State& state) {
  SchemaPtr schema = bench::MakeSalesSchema(static_cast<int>(state.range(0)),
                                            100);
  Connection conn{Connection::Config{schema}};
  const char* sql =
      "SELECT name, COUNT(*) AS cnt, SUM(units) AS sm FROM "
      "(SELECT name, saleid, units FROM sales JOIN products "
      "USING (productId)) AS fact GROUP BY name";
  auto logical = conn.ParseQuery(sql);
  auto physical = conn.OptimizePlan(logical.value());
  for (auto _ : state) {
    auto rows = physical.value()->Execute();
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_StarQueryWithoutTile)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace calcite
