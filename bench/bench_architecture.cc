// Experiment F1 (Figure 1): the architecture's end-to-end pipeline.
// Measures each stage of the interaction Figure 1 depicts — SQL parse,
// validate+convert to algebra, logical (rule) optimization, cost-based
// physical planning, execution — plus the alternative entry point for
// systems with their own parser (the expression builder).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <random>

#include "adapters/enumerable/enumerable_rules.h"
#include "bench_common.h"
#include "plan/hep_planner.h"
#include "plan/volcano_planner.h"
#include "rules/core_rules.h"
#include "sql/parser.h"
#include "sql/sql_to_rel.h"
#include "storage/disk_table.h"
#include "tools/rel_builder.h"

namespace calcite {
namespace {

const char* kQuery =
    "SELECT products.name, COUNT(*) AS c "
    "FROM sales JOIN products USING (productId) "
    "WHERE sales.discount IS NOT NULL "
    "GROUP BY products.name ORDER BY c DESC";

void BM_Stage1_Parse(benchmark::State& state) {
  for (auto _ : state) {
    auto ast = SqlParser::Parse(kQuery);
    benchmark::DoNotOptimize(ast);
  }
}
BENCHMARK(BM_Stage1_Parse);

void BM_Stage2_ValidateAndConvert(benchmark::State& state) {
  SchemaPtr schema = bench::MakeSalesSchema(1000, 50);
  PlannerContext context;
  auto ast = SqlParser::Parse(kQuery);
  for (auto _ : state) {
    SqlToRelConverter converter(schema, &context);
    auto rel = converter.Convert(ast.value());
    benchmark::DoNotOptimize(rel);
  }
}
BENCHMARK(BM_Stage2_ValidateAndConvert);

void BM_Stage3_LogicalRules(benchmark::State& state) {
  SchemaPtr schema = bench::MakeSalesSchema(1000, 50);
  Connection conn{Connection::Config{schema}};
  auto logical = conn.ParseQuery(kQuery);
  for (auto _ : state) {
    PlannerContext context;
    HepPlanner planner(StandardLogicalRules(), &context);
    auto out = planner.Optimize(logical.value());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Stage3_LogicalRules);

void BM_Stage4_CostBasedPlanning(benchmark::State& state) {
  SchemaPtr schema = bench::MakeSalesSchema(1000, 50);
  Connection conn{Connection::Config{schema}};
  auto logical = conn.ParseQuery(kQuery);
  PlannerContext hep_context;
  HepPlanner hep(StandardLogicalRules(), &hep_context);
  auto rewritten = hep.Optimize(logical.value());
  for (auto _ : state) {
    PlannerContext context;
    std::vector<RelOptRulePtr> rules = EnumerableConverterRules();
    VolcanoPlanner planner(rules, &context);
    auto out = planner.Optimize(rewritten.value(),
                                RelTraitSet(Convention::Enumerable()));
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Stage4_CostBasedPlanning);

void BM_Stage5_Execute(benchmark::State& state) {
  SchemaPtr schema = bench::MakeSalesSchema(1000, 50);
  Connection conn{Connection::Config{schema}};
  auto logical = conn.ParseQuery(kQuery);
  auto physical = conn.OptimizePlan(logical.value());
  for (auto _ : state) {
    auto rows = physical.value()->Execute();
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_Stage5_Execute);

// Experiment F1b: the vectorized executor's batch-size sweep. One fixed
// scan -> filter -> project -> aggregate pipeline over 100k sales rows,
// executed at batch sizes 1 / 64 / 1024 / 4096. batch_size=1 is the old
// row-at-a-time discipline (one pipeline dispatch per tuple); the larger
// settings amortize that dispatch across a whole RowBatch. The counter
// reports source rows per second.
void BM_BatchSizeSweep(benchmark::State& state) {
  constexpr int kRows = 100000;
  SchemaPtr schema = bench::MakeSalesSchema(kRows, 50);
  Connection::Config config;
  config.schema = schema;
  config.exec_options.batch_size = static_cast<size_t>(state.range(0));
  Connection conn(std::move(config));
  auto logical = conn.ParseQuery(
      "SELECT productId, COUNT(*) AS c, SUM(units) AS u, MIN(saleid) AS f, "
      "MAX(discount) AS m "
      "FROM sales WHERE discount IS NOT NULL AND units > 2 "
      "AND saleid >= 0 AND discount < 0.95 "
      "GROUP BY productId");
  auto physical = conn.OptimizePlan(logical.value());
  int64_t rows_processed = 0;
  for (auto _ : state) {
    auto result = conn.ExecutePlan(physical.value());
    benchmark::DoNotOptimize(result);
    rows_processed += kRows;
  }
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(rows_processed), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BatchSizeSweep)->Arg(1)->Arg(64)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

// Experiment F1b': the filter-heavy companion of the batch-size sweep,
// aimed at the selection-pushdown machinery. A selective conjunction of
// simple comparisons sits directly over the scan, so every conjunct pushes
// into the leaf (Table::ScanBatchedFiltered): rows failing the predicates
// are never materialized, survivors flow to the projection as a selection
// vector with no compaction in between, and the projection's arithmetic
// runs through the fused EvalBatchSel kernels. The counter reports source
// rows per second (the scan still inspects every stored row).
void BM_FilterPushdownSweep(benchmark::State& state) {
  constexpr int kRows = 100000;
  SchemaPtr schema = bench::MakeSalesSchema(kRows, 50);
  Connection::Config config;
  config.schema = schema;
  config.exec_options.batch_size = static_cast<size_t>(state.range(0));
  Connection conn(std::move(config));
  auto logical = conn.ParseQuery(
      "SELECT saleid, units * 2, discount "
      "FROM sales WHERE units > 7 AND discount IS NOT NULL "
      "AND discount < 0.3 AND saleid >= 1000");
  auto physical = conn.OptimizePlan(logical.value());
  int64_t rows_processed = 0;
  for (auto _ : state) {
    auto result = conn.ExecutePlan(physical.value());
    benchmark::DoNotOptimize(result);
    rows_processed += kRows;
  }
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(rows_processed), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FilterPushdownSweep)->Arg(1)->Arg(64)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

// Experiment F1c: the morsel-driven parallel executor's thread sweep. The
// same scan -> filter -> project -> aggregate pipeline as F1b plus a
// join-heavy plan, executed at batch_size 1024 with 1 / 2 / 4 / 8 worker
// threads. num_threads=1 is the serial engine (no scheduler, no exchange);
// the larger settings run the fragment as morsel-parallel workers feeding
// a partitioned aggregate / partitioned hash join. The counter reports
// source rows per second; expect near-linear scaling up to the physical
// core count and no benefit beyond it.
void BM_ParallelSweep_Aggregate(benchmark::State& state) {
  constexpr int kRows = 100000;
  SchemaPtr schema = bench::MakeSalesSchema(kRows, 50);
  Connection::Config config;
  config.schema = schema;
  config.exec_options.batch_size = 1024;
  config.exec_options.num_threads = static_cast<size_t>(state.range(0));
  Connection conn(std::move(config));
  auto logical = conn.ParseQuery(
      "SELECT productId, COUNT(*) AS c, SUM(units) AS u, MIN(saleid) AS f, "
      "MAX(discount) AS m "
      "FROM sales WHERE discount IS NOT NULL AND units > 2 "
      "AND saleid >= 0 AND discount < 0.95 "
      "GROUP BY productId");
  auto physical = conn.OptimizePlan(logical.value());
  int64_t rows_processed = 0;
  for (auto _ : state) {
    auto result = conn.ExecutePlan(physical.value());
    benchmark::DoNotOptimize(result);
    rows_processed += kRows;
  }
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(rows_processed), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ParallelSweep_Aggregate)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_ParallelSweep_Join(benchmark::State& state) {
  constexpr int kRows = 100000;
  SchemaPtr schema = bench::MakeSalesSchema(kRows, 200);
  Connection::Config config;
  config.schema = schema;
  config.exec_options.batch_size = 1024;
  config.exec_options.num_threads = static_cast<size_t>(state.range(0));
  Connection conn(std::move(config));
  auto logical = conn.ParseQuery(
      "SELECT products.name, COUNT(*) AS c, SUM(sales.units) AS u "
      "FROM sales JOIN products USING (productId) "
      "WHERE sales.units > 1 GROUP BY products.name");
  auto physical = conn.OptimizePlan(logical.value());
  int64_t rows_processed = 0;
  for (auto _ : state) {
    auto result = conn.ExecutePlan(physical.value());
    benchmark::DoNotOptimize(result);
    rows_processed += kRows;
  }
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(rows_processed), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ParallelSweep_Join)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Experiment F1d: B-tree index-range scan vs full heap scan over an
// out-of-core DiskTable (src/storage/) at three selectivities. 200k rows
// in slotted heap pages behind a 64-page buffer pool (the table is ~50x
// larger than the pool, so the full scan cycles every page through
// eviction), primary key = column 0. The pushed predicate is a key range
// keeping 0.01% / 1% / 50% of the rows; arg1 toggles the index route off,
// forcing the same predicate through the full heap scan. The acceptance
// bar: at <= 1% selectivity the index route beats the heap route by >= 5x.
// The counter reports *result* rows per second — compare iteration time,
// not the counter, across selectivities.
void BM_IndexScanVsFullScan(benchmark::State& state) {
  constexpr int64_t kRows = 200000;
  static std::shared_ptr<storage::DiskTable> table = [] {
    TypeFactory tf;
    auto int_t = tf.CreateSqlType(SqlTypeName::kInteger);
    auto str_t = tf.CreateSqlType(SqlTypeName::kVarchar, 24, true);
    auto dbl_t = tf.CreateSqlType(SqlTypeName::kDouble, -1, true);
    auto row_type = tf.CreateStructType({"id", "payload", "weight"},
                                        {int_t, str_t, dbl_t});
    storage::DiskTableOptions opts;
    opts.pool_pages = 64;
    auto created = storage::DiskTable::Create("/tmp/calcite_bench_index.db",
                                              row_type, 0, opts);
    if (!created.ok()) return std::shared_ptr<storage::DiskTable>();
    std::vector<Row> rows;
    rows.reserve(kRows);
    for (int64_t i = 0; i < kRows; ++i) {
      rows.push_back({Value::Int(i),
                      Value::String("payload-" + std::to_string(i % 97)),
                      Value::Double(static_cast<double>(i % 31) * 1.5)});
    }
    if (!(*created)->InsertRows(rows).ok()) {
      return std::shared_ptr<storage::DiskTable>();
    }
    return *created;
  }();
  if (table == nullptr) {
    state.SkipWithError("disk table setup failed");
    return;
  }

  const int64_t selectivity_bp = state.range(0);  // basis points (1/10000)
  const bool use_index = state.range(1) != 0;
  const int64_t span = std::max<int64_t>(1, kRows * selectivity_bp / 10000);
  table->set_index_scan_enabled(use_index);

  ScanPredicate lo;
  lo.kind = ScanPredicate::Kind::kGreaterThanOrEqual;
  lo.column = 0;
  lo.literal = Value::Int(kRows / 2);
  ScanPredicate hi;
  hi.kind = ScanPredicate::Kind::kLessThan;
  hi.column = 0;
  hi.literal = Value::Int(kRows / 2 + span);

  int64_t result_rows = 0;
  for (auto _ : state) {
    auto puller = table->ScanBatchedFiltered(1024, {lo, hi});
    if (!puller.ok()) {
      state.SkipWithError("scan failed");
      return;
    }
    for (;;) {
      auto batch = (puller.value())();
      if (!batch.ok()) {
        state.SkipWithError("pull failed");
        return;
      }
      if (batch.value().empty()) break;
      result_rows += static_cast<int64_t>(batch.value().size());
      benchmark::DoNotOptimize(batch.value());
    }
  }
  table->set_index_scan_enabled(true);
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(result_rows), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_IndexScanVsFullScan)
    ->ArgsProduct({{1, 100, 5000}, {1, 0}})  // {selectivity bp} x {index on/off}
    ->Unit(benchmark::kMillisecond);

// The cost-based access-path acceptance bench: a 200k-row ANALYZEd disk
// table, scanned at 0.01% / 1% / 50% key-range selectivity under each
// AccessPath (arg1: 0=kAuto, 1=kForceIndex, 2=kForceHeap). Unlike
// BM_IndexScanVsFullScan, rows are inserted in *shuffled* key order, so an
// index range walk pays a random heap fetch per row through the small pool
// — the regime where the break-even is real: the index wins the narrow
// ranges, the sequential heap pass wins the wide one. Acceptance: kAuto
// matches the faster forced path at every selectivity (it picks index at
// 1bp/100bp, heap at 5000bp). The used_index counter reports the chosen
// path.
void BM_CostBasedAccessPath(benchmark::State& state) {
  constexpr int64_t kRows = 200000;
  static std::shared_ptr<storage::DiskTable> table = [] {
    TypeFactory tf;
    auto int_t = tf.CreateSqlType(SqlTypeName::kInteger);
    auto str_t = tf.CreateSqlType(SqlTypeName::kVarchar, 24, true);
    auto dbl_t = tf.CreateSqlType(SqlTypeName::kDouble, -1, true);
    auto row_type = tf.CreateStructType({"id", "payload", "weight"},
                                        {int_t, str_t, dbl_t});
    storage::DiskTableOptions opts;
    opts.pool_pages = 64;
    auto created = storage::DiskTable::Create("/tmp/calcite_bench_cost.db",
                                              row_type, 0, opts);
    if (!created.ok()) return std::shared_ptr<storage::DiskTable>();
    std::vector<int64_t> keys(kRows);
    for (int64_t i = 0; i < kRows; ++i) keys[static_cast<size_t>(i)] = i;
    std::mt19937_64 rng(20240807);
    std::shuffle(keys.begin(), keys.end(), rng);
    std::vector<Row> rows;
    rows.reserve(kRows);
    for (int64_t key : keys) {
      rows.push_back({Value::Int(key),
                      Value::String("payload-" + std::to_string(key % 97)),
                      Value::Double(static_cast<double>(key % 31) * 1.5)});
    }
    if (!(*created)->InsertRows(rows).ok()) {
      return std::shared_ptr<storage::DiskTable>();
    }
    if (!(*created)->Analyze().ok()) {
      return std::shared_ptr<storage::DiskTable>();
    }
    return *created;
  }();
  if (table == nullptr) {
    state.SkipWithError("disk table setup failed");
    return;
  }

  const int64_t selectivity_bp = state.range(0);  // basis points (1/10000)
  const int64_t span = std::max<int64_t>(1, kRows * selectivity_bp / 10000);

  ScanSpec spec;
  switch (state.range(1)) {
    case 1:
      spec.access_path = AccessPath::kForceIndex;
      break;
    case 2:
      spec.access_path = AccessPath::kForceHeap;
      break;
    default:
      spec.access_path = AccessPath::kAuto;
      break;
  }
  ScanPredicate lo;
  lo.kind = ScanPredicate::Kind::kGreaterThanOrEqual;
  lo.column = 0;
  lo.literal = Value::Int(kRows / 2);
  ScanPredicate hi;
  hi.kind = ScanPredicate::Kind::kLessThan;
  hi.column = 0;
  hi.literal = Value::Int(kRows / 2 + span);
  spec.predicates = {lo, hi};

  int64_t result_rows = 0;
  for (auto _ : state) {
    auto puller = table->OpenScan(spec);
    if (!puller.ok()) {
      state.SkipWithError("scan failed");
      return;
    }
    for (;;) {
      auto batch = (puller.value())();
      if (!batch.ok()) {
        state.SkipWithError("pull failed");
        return;
      }
      if (batch.value().empty()) break;
      result_rows += static_cast<int64_t>(batch.value().size());
      benchmark::DoNotOptimize(batch.value());
    }
  }
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(result_rows), benchmark::Counter::kIsRate);
  state.counters["used_index"] = table->last_scan_used_index() ? 1.0 : 0.0;
}
BENCHMARK(BM_CostBasedAccessPath)
    // {selectivity bp} x {0=kAuto, 1=kForceIndex, 2=kForceHeap}
    ->ArgsProduct({{1, 100, 5000}, {0, 1, 2}})
    ->Unit(benchmark::kMillisecond);

void BM_AltEntry_ExpressionBuilder(benchmark::State& state) {
  // The "own parser" integration path (§3): algebra built directly.
  SchemaPtr schema = bench::MakeSalesSchema(1000, 50);
  for (auto _ : state) {
    RelBuilder b(schema);
    b.Scan("sales");
    auto node = b.Aggregate(b.GroupKey({"productId"}),
                            {b.Count(false, "c"),
                             b.Sum(false, "s", b.Field("units"))})
                    .Build();
    benchmark::DoNotOptimize(node);
  }
}
BENCHMARK(BM_AltEntry_ExpressionBuilder);

}  // namespace
}  // namespace calcite
