// Experiment F1 (Figure 1): the architecture's end-to-end pipeline.
// Measures each stage of the interaction Figure 1 depicts — SQL parse,
// validate+convert to algebra, logical (rule) optimization, cost-based
// physical planning, execution — plus the alternative entry point for
// systems with their own parser (the expression builder).

#include <benchmark/benchmark.h>

#include "adapters/enumerable/enumerable_rules.h"
#include "bench_common.h"
#include "plan/hep_planner.h"
#include "plan/volcano_planner.h"
#include "rules/core_rules.h"
#include "sql/parser.h"
#include "sql/sql_to_rel.h"
#include "tools/rel_builder.h"

namespace calcite {
namespace {

const char* kQuery =
    "SELECT products.name, COUNT(*) AS c "
    "FROM sales JOIN products USING (productId) "
    "WHERE sales.discount IS NOT NULL "
    "GROUP BY products.name ORDER BY c DESC";

void BM_Stage1_Parse(benchmark::State& state) {
  for (auto _ : state) {
    auto ast = SqlParser::Parse(kQuery);
    benchmark::DoNotOptimize(ast);
  }
}
BENCHMARK(BM_Stage1_Parse);

void BM_Stage2_ValidateAndConvert(benchmark::State& state) {
  SchemaPtr schema = bench::MakeSalesSchema(1000, 50);
  PlannerContext context;
  auto ast = SqlParser::Parse(kQuery);
  for (auto _ : state) {
    SqlToRelConverter converter(schema, &context);
    auto rel = converter.Convert(ast.value());
    benchmark::DoNotOptimize(rel);
  }
}
BENCHMARK(BM_Stage2_ValidateAndConvert);

void BM_Stage3_LogicalRules(benchmark::State& state) {
  SchemaPtr schema = bench::MakeSalesSchema(1000, 50);
  Connection conn{Connection::Config{schema}};
  auto logical = conn.ParseQuery(kQuery);
  for (auto _ : state) {
    PlannerContext context;
    HepPlanner planner(StandardLogicalRules(), &context);
    auto out = planner.Optimize(logical.value());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Stage3_LogicalRules);

void BM_Stage4_CostBasedPlanning(benchmark::State& state) {
  SchemaPtr schema = bench::MakeSalesSchema(1000, 50);
  Connection conn{Connection::Config{schema}};
  auto logical = conn.ParseQuery(kQuery);
  PlannerContext hep_context;
  HepPlanner hep(StandardLogicalRules(), &hep_context);
  auto rewritten = hep.Optimize(logical.value());
  for (auto _ : state) {
    PlannerContext context;
    std::vector<RelOptRulePtr> rules = EnumerableConverterRules();
    VolcanoPlanner planner(rules, &context);
    auto out = planner.Optimize(rewritten.value(),
                                RelTraitSet(Convention::Enumerable()));
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Stage4_CostBasedPlanning);

void BM_Stage5_Execute(benchmark::State& state) {
  SchemaPtr schema = bench::MakeSalesSchema(1000, 50);
  Connection conn{Connection::Config{schema}};
  auto logical = conn.ParseQuery(kQuery);
  auto physical = conn.OptimizePlan(logical.value());
  for (auto _ : state) {
    auto rows = physical.value()->Execute();
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_Stage5_Execute);

void BM_AltEntry_ExpressionBuilder(benchmark::State& state) {
  // The "own parser" integration path (§3): algebra built directly.
  SchemaPtr schema = bench::MakeSalesSchema(1000, 50);
  for (auto _ : state) {
    RelBuilder b(schema);
    b.Scan("sales");
    auto node = b.Aggregate(b.GroupKey({"productId"}),
                            {b.Count(false, "c"),
                             b.Sum(false, "s", b.Field("units"))})
                    .Build();
    benchmark::DoNotOptimize(node);
  }
}
BENCHMARK(BM_AltEntry_ExpressionBuilder);

}  // namespace
}  // namespace calcite
