// Experiment E2: the metadata cache (§6).
//
// "Their implementation includes a cache for metadata results, which yields
// significant performance improvements, e.g., when we need to compute
// multiple types of metadata such as cardinality, average row size, and
// selectivity for a given join, and all these computations rely on the
// cardinality of their inputs." We plan an N-way join query with the cache
// enabled and disabled and compare planning time.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "rules/core_rules.h"
#include "adapters/enumerable/enumerable_rules.h"
#include "plan/volcano_planner.h"
#include "tools/rel_builder.h"

namespace calcite {
namespace {

RelNodePtr BuildJoinChain(const SchemaPtr& schema, int joins) {
  RelBuilder b(schema);
  b.Scan("sales");
  for (int i = 0; i < joins; ++i) {
    b.Scan("products");
    b.Join(JoinType::kInner,
           b.Equals(b.Field(1, "productId"), b.Field(0, "productId")));
  }
  return b.Build().value();
}

void RunPlanner(benchmark::State& state, bool cache_enabled) {
  SchemaPtr schema = bench::MakeSalesSchema(10000, 100);
  RelNodePtr plan = BuildJoinChain(schema, static_cast<int>(state.range(0)));
  std::vector<RelOptRulePtr> rules = StandardLogicalRules();
  for (auto& r : EnumerableConverterRules()) rules.push_back(r);
  int64_t computations = 0;
  for (auto _ : state) {
    PlannerContext context;
    context.metadata()->SetCacheEnabled(cache_enabled);
    VolcanoPlanner planner(rules, &context);
    auto optimized =
        planner.Optimize(plan, RelTraitSet(Convention::Enumerable()));
    benchmark::DoNotOptimize(optimized);
    computations = context.metadata()->computation_count();
  }
  state.counters["metadata_computations"] =
      static_cast<double>(computations);
}

void BM_PlanningWithMetadataCache(benchmark::State& state) {
  RunPlanner(state, true);
}
BENCHMARK(BM_PlanningWithMetadataCache)->Arg(2)->Arg(4)->Arg(6);

void BM_PlanningWithoutMetadataCache(benchmark::State& state) {
  RunPlanner(state, false);
}
BENCHMARK(BM_PlanningWithoutMetadataCache)->Arg(2)->Arg(4)->Arg(6);

}  // namespace
}  // namespace calcite
