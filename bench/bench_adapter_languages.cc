// Experiment T2 (Table 2): adapters and their target languages.
//
// "One of the main key components of the implementation of these adapters
// is the converter responsible for translating the algebra expression to be
// pushed to the system into the query language supported by that system."
// For each adapter we optimize a query, locate the pushed-down subtree, and
// regenerate the backend-language text: SQL dialects (JDBC), CQL
// (Cassandra), SPL (Splunk), JSON find() (MongoDB), Java RDD (Spark).
// Timings cover the full translate path.

#include <benchmark/benchmark.h>

#include "adapters/cassandra/cassandra_adapter.h"
#include "adapters/mongo/mongo_adapter.h"
#include "bench_common.h"
#include "sql/rel_to_sql.h"

namespace calcite {
namespace {

RelNodePtr FindConvention(RelNodePtr node, const Convention* convention) {
  while (node != nullptr && node->convention() != convention) {
    node = node->num_inputs() > 0 ? node->input(0) : nullptr;
  }
  return node;
}

void BM_Language_JdbcSqlDialects(benchmark::State& state) {
  auto catalog = bench::MakeFederationCatalog(100, 200);
  Connection conn{Connection::Config{catalog.root}};
  auto logical = conn.ParseQuery(
      "SELECT name FROM mysql.products WHERE productId < 10 ORDER BY name");
  auto physical = conn.OptimizePlan(logical.value());
  RelNodePtr jdbc = FindConvention(physical.value(),
                                   catalog.jdbc->ScanConvention());
  std::string text;
  for (auto _ : state) {
    auto mysql_sql = RelToSqlConverter(SqlDialect::MySql()).Convert(jdbc);
    auto pg_sql = RelToSqlConverter(SqlDialect::PostgreSql()).Convert(jdbc);
    auto ansi_sql = RelToSqlConverter(SqlDialect::Ansi()).Convert(jdbc);
    benchmark::DoNotOptimize(mysql_sql);
    text = "--- Table 2: JDBC -> SQL dialects ---\n  MySQL:      " +
           mysql_sql.value() + "\n  PostgreSQL: " + pg_sql.value() +
           "\n  ANSI:       " + ansi_sql.value() + "\n";
  }
  bench::PrintOnce(text);
}
BENCHMARK(BM_Language_JdbcSqlDialects);

void BM_Language_SplunkSpl(benchmark::State& state) {
  auto catalog = bench::MakeFederationCatalog(500, 50);
  Connection conn{Connection::Config{catalog.root}};
  auto logical = conn.ParseQuery(
      "SELECT p.name, o.units FROM splunk.orders o "
      "JOIN mysql.products p ON o.productId = p.productId "
      "WHERE o.units > 40");
  auto physical = conn.OptimizePlan(logical.value());
  RelNodePtr splunk =
      FindConvention(physical.value(), SplunkSchema::SplunkConvention());
  std::string text;
  for (auto _ : state) {
    auto spl = SplunkGenerateSpl(splunk);
    benchmark::DoNotOptimize(spl);
    text = "--- Table 2: Splunk -> SPL ---\n  " + spl.value() + "\n";
  }
  bench::PrintOnce(text);
}
BENCHMARK(BM_Language_SplunkSpl);

void BM_Language_CassandraCql(benchmark::State& state) {
  auto& tf = bench::Tf();
  auto int_t = tf.CreateSqlType(SqlTypeName::kInteger);
  std::vector<Row> data;
  for (int i = 0; i < 1000; ++i) {
    data.push_back({Value::Int(i % 4), Value::Int(i)});
  }
  auto cass = std::make_shared<CassandraSchema>();
  cass->AddTable("events",
                 std::make_shared<CassandraTable>(
                     tf.CreateStructType({"pk", "ck"}, {int_t, int_t}),
                     std::move(data), std::vector<int>{0},
                     RelCollation::Of({1})));
  auto root = std::make_shared<Schema>();
  root->AddSubSchema("cass", cass);
  Connection conn{Connection::Config{root}};
  auto logical =
      conn.ParseQuery("SELECT * FROM cass.events WHERE pk = 2 ORDER BY ck");
  auto physical = conn.OptimizePlan(logical.value());
  RelNodePtr node = FindConvention(physical.value(),
                                   CassandraSchema::CassandraConvention());
  std::string text;
  for (auto _ : state) {
    auto cql = CassandraGenerateCql(node);
    benchmark::DoNotOptimize(cql);
    text = "--- Table 2: Cassandra -> CQL ---\n  " + cql.value() + "\n";
  }
  bench::PrintOnce(text);
}
BENCHMARK(BM_Language_CassandraCql);

void BM_Language_MongoJson(benchmark::State& state) {
  std::vector<JsonValue> docs;
  for (int i = 0; i < 1000; ++i) {
    JsonValue doc = JsonValue::Object();
    doc.Set("city", JsonValue("city-" + std::to_string(i % 10)));
    docs.push_back(std::move(doc));
  }
  auto mongo = std::make_shared<MongoSchema>();
  mongo->AddTable("zips", std::make_shared<MongoTable>(std::move(docs)));
  auto root = std::make_shared<Schema>();
  root->AddSubSchema("mongo", mongo);
  Connection conn{Connection::Config{root}};
  auto logical = conn.ParseQuery(
      "SELECT * FROM mongo.zips WHERE _MAP['city'] = 'city-3'");
  auto physical = conn.OptimizePlan(logical.value());
  RelNodePtr node =
      FindConvention(physical.value(), MongoSchema::MongoConvention());
  std::string text;
  for (auto _ : state) {
    auto find = MongoGenerateQuery(node);
    benchmark::DoNotOptimize(find);
    text = "--- Table 2: MongoDB -> JSON find() ---\n  " + find.value() +
           "\n";
  }
  bench::PrintOnce(text);
}
BENCHMARK(BM_Language_MongoJson);

void BM_Language_SparkRdd(benchmark::State& state) {
  auto catalog = bench::MakeFederationCatalog(500, 50);
  // Disable the lookup rule so the Spark plan wins the race.
  auto splunk = std::make_shared<SplunkSchema>();
  splunk->AddTable("orders",
                   catalog.root->GetSubSchema("splunk")->GetTable("orders"));
  auto root = std::make_shared<Schema>();
  root->AddSubSchema("splunk", splunk);
  root->AddSubSchema("mysql", catalog.jdbc);
  Connection::Config config{root};
  config.extra_rules = SparkAdapter::Rules(
      {SplunkSchema::SplunkConvention(), catalog.jdbc->ScanConvention()});
  Connection conn(config);
  auto logical = conn.ParseQuery(
      "SELECT p.name FROM splunk.orders o "
      "JOIN mysql.products p ON o.productId = p.productId");
  auto physical = conn.OptimizePlan(logical.value());
  RelNodePtr node =
      FindConvention(physical.value(), SparkAdapter::SparkConvention());
  std::string text = "--- Table 2: Spark -> Java RDD ---\n  (plan did not "
                     "choose Spark in this configuration)\n";
  for (auto _ : state) {
    if (node != nullptr) {
      auto rdd = SparkGenerateRdd(node);
      benchmark::DoNotOptimize(rdd);
      if (rdd.ok()) {
        text = "--- Table 2: Spark -> Java RDD ---\n  " + rdd.value() + "\n";
      }
    }
  }
  bench::PrintOnce(text);
}
BENCHMARK(BM_Language_SparkRdd);

}  // namespace
}  // namespace calcite
