// Experiment F3 (Figure 3): the adapter design — model, schema factory,
// schema, tables, push-down rules. Exercises every component live for each
// bundled adapter and reports per-adapter scan+filter throughput through
// the full optimizer stack.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <fstream>

#include "adapters/cassandra/cassandra_adapter.h"
#include "adapters/mongo/mongo_adapter.h"
#include "bench_common.h"
#include "schema/model.h"

namespace calcite {
namespace {

void BM_Adapter_Jdbc(benchmark::State& state) {
  auto catalog = bench::MakeFederationCatalog(100, 2000);
  Connection conn{Connection::Config{catalog.root}};
  const char* sql = "SELECT name FROM mysql.products WHERE productId < 500";
  auto logical = conn.ParseQuery(sql);
  auto physical = conn.OptimizePlan(logical.value());
  for (auto _ : state) {
    auto rows = physical.value()->Execute();
    benchmark::DoNotOptimize(rows);
  }
  bench::PrintOnce("[jdbc] model->RemoteSqlEngine, schema factory ok, "
                   "push-down via Rel-to-SQL\n");
}
BENCHMARK(BM_Adapter_Jdbc);

void BM_Adapter_Splunk(benchmark::State& state) {
  auto catalog = bench::MakeFederationCatalog(20000, 100);
  Connection conn{Connection::Config{catalog.root}};
  const char* sql = "SELECT * FROM splunk.orders WHERE units > 40";
  auto logical = conn.ParseQuery(sql);
  auto physical = conn.OptimizePlan(logical.value());
  for (auto _ : state) {
    auto rows = physical.value()->Execute();
    benchmark::DoNotOptimize(rows);
  }
  bench::PrintOnce("[splunk] filter push-down rule fires (SplunkFilter)\n");
}
BENCHMARK(BM_Adapter_Splunk);

void BM_Adapter_Cassandra(benchmark::State& state) {
  auto& tf = bench::Tf();
  auto int_t = tf.CreateSqlType(SqlTypeName::kInteger);
  std::vector<Row> data;
  for (int i = 0; i < 20000; ++i) {
    data.push_back({Value::Int(i % 8), Value::Int((i * 37) % 100000)});
  }
  auto table = std::make_shared<CassandraTable>(
      tf.CreateStructType({"pk", "ck"}, {int_t, int_t}), std::move(data),
      std::vector<int>{0}, RelCollation::Of({1}));
  auto cass = std::make_shared<CassandraSchema>();
  cass->AddTable("t", table);
  auto root = std::make_shared<Schema>();
  root->AddSubSchema("cass", cass);
  Connection conn{Connection::Config{root}};
  const char* sql = "SELECT * FROM cass.t WHERE pk = 3 ORDER BY ck";
  auto logical = conn.ParseQuery(sql);
  auto physical = conn.OptimizePlan(logical.value());
  for (auto _ : state) {
    auto rows = physical.value()->Execute();
    benchmark::DoNotOptimize(rows);
  }
  bench::PrintOnce("[cassandra] partition filter + clustering sort pushed\n");
}
BENCHMARK(BM_Adapter_Cassandra);

void BM_Adapter_Mongo(benchmark::State& state) {
  std::vector<JsonValue> docs;
  for (int i = 0; i < 5000; ++i) {
    JsonValue doc = JsonValue::Object();
    doc.Set("k", JsonValue(i % 100));
    doc.Set("payload", JsonValue("row-" + std::to_string(i)));
    docs.push_back(std::move(doc));
  }
  auto mongo = std::make_shared<MongoSchema>();
  mongo->AddTable("docs", std::make_shared<MongoTable>(std::move(docs)));
  auto root = std::make_shared<Schema>();
  root->AddSubSchema("mongo", mongo);
  Connection conn{Connection::Config{root}};
  const char* sql = "SELECT * FROM mongo.docs WHERE _MAP['k'] = 42";
  auto logical = conn.ParseQuery(sql);
  auto physical = conn.OptimizePlan(logical.value());
  for (auto _ : state) {
    auto rows = physical.value()->Execute();
    benchmark::DoNotOptimize(rows);
  }
  bench::PrintOnce("[mongo] _MAP document table, filter as find() query\n");
}
BENCHMARK(BM_Adapter_Mongo);

void BM_Adapter_CsvViaModel(benchmark::State& state) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "calcite_bench_csv";
  fs::create_directories(dir);
  {
    std::ofstream out(dir / "measurements.csv");
    out << "id:int,v:double\n";
    for (int i = 0; i < 5000; ++i) {
      out << i << "," << (i * 0.5) << "\n";
    }
  }
  std::string model = std::string(R"({"schemas": [{"name": "files", )") +
                      R"("factory": "csv", "operand": {"directory": ")" +
                      dir.string() + R"("}}]})";
  auto schema = LoadModel(model);
  Connection conn{Connection::Config{schema.value()}};
  const char* sql = "SELECT COUNT(*) FROM files.measurements WHERE v > 100";
  auto logical = conn.ParseQuery(sql);
  auto physical = conn.OptimizePlan(logical.value());
  for (auto _ : state) {
    auto rows = physical.value()->Execute();
    benchmark::DoNotOptimize(rows);
  }
  bench::PrintOnce("[csv] JSON model -> schema factory -> tables\n");
}
BENCHMARK(BM_Adapter_CsvViaModel);

}  // namespace
}  // namespace calcite
