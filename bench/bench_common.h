#ifndef CALCITE_BENCH_BENCH_COMMON_H_
#define CALCITE_BENCH_BENCH_COMMON_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "adapters/jdbc/jdbc_adapter.h"
#include "adapters/spark/spark_adapter.h"
#include "adapters/splunk/splunk_adapter.h"
#include "schema/schema.h"
#include "schema/table.h"
#include "tools/frameworks.h"

namespace calcite::bench {

inline TypeFactory& Tf() {
  static TypeFactory tf;
  return tf;
}

/// sales(saleid, productId, discount?, units) with `n` rows and
/// products(productId, name) with `products` rows — the Figure 4 data at
/// parameterized scale.
inline SchemaPtr MakeSalesSchema(int n, int products) {
  auto& tf = Tf();
  auto int_t = tf.CreateSqlType(SqlTypeName::kInteger);
  auto str_t = tf.CreateSqlType(SqlTypeName::kVarchar, 32);
  auto dbl_null = tf.CreateSqlType(SqlTypeName::kDouble, -1, true);
  auto schema = std::make_shared<Schema>();
  {
    std::vector<Row> rows;
    rows.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      rows.push_back({Value::Int(i), Value::Int(i % products + 1),
                      i % 3 == 0 ? Value::Null()
                                 : Value::Double((i % 10) / 10.0),
                      Value::Int(i % 20)});
    }
    auto table = std::make_shared<MemTable>(
        tf.CreateStructType({"saleid", "productId", "discount", "units"},
                            {int_t, int_t, dbl_null, int_t}),
        std::move(rows));
    Statistic stat;
    stat.row_count = n;
    stat.unique_keys = {{0}};
    table->set_statistic(stat);
    schema->AddTable("sales", table);
  }
  {
    std::vector<Row> rows;
    for (int i = 1; i <= products; ++i) {
      rows.push_back(
          {Value::Int(i), Value::String("product-" + std::to_string(i))});
    }
    auto table = std::make_shared<MemTable>(
        tf.CreateStructType({"productId", "name"}, {int_t, str_t}),
        std::move(rows));
    Statistic stat;
    stat.row_count = products;
    stat.unique_keys = {{0}};
    table->set_statistic(stat);
    schema->AddTable("products", table);
  }
  return schema;
}

/// The Figure 2 catalog (Splunk orders + MySQL products) at scale.
struct FederationCatalog {
  SchemaPtr root;
  RemoteSqlEnginePtr mysql;
  std::shared_ptr<JdbcSchema> jdbc;
};

inline FederationCatalog MakeFederationCatalog(int orders, int products) {
  auto& tf = Tf();
  auto int_t = tf.CreateSqlType(SqlTypeName::kInteger);
  auto str_t = tf.CreateSqlType(SqlTypeName::kVarchar, 32);

  auto mysql_tables = std::make_shared<Schema>();
  {
    std::vector<Row> rows;
    for (int i = 1; i <= products; ++i) {
      rows.push_back(
          {Value::Int(i), Value::String("product-" + std::to_string(i))});
    }
    auto table = std::make_shared<MemTable>(
        tf.CreateStructType({"productId", "name"}, {int_t, str_t}),
        std::move(rows));
    Statistic stat;
    stat.row_count = products;
    stat.unique_keys = {{0}};
    table->set_statistic(stat);
    mysql_tables->AddTable("products", table);
  }
  auto mysql = std::make_shared<RemoteSqlEngine>("mysql", SqlDialect::MySql(),
                                                 mysql_tables);
  auto splunk =
      std::make_shared<SplunkSchema>(std::vector<RemoteSqlEnginePtr>{mysql});
  {
    std::vector<Row> rows;
    rows.reserve(static_cast<size_t>(orders));
    for (int i = 0; i < orders; ++i) {
      rows.push_back({Value::Int(1700000000 + i),
                      Value::Int(i % products + 1), Value::Int(i % 50)});
    }
    splunk->AddTable(
        "orders",
        std::make_shared<MemTable>(
            tf.CreateStructType({"rowtime", "productId", "units"},
                                {int_t, int_t, int_t}),
            std::move(rows)));
  }
  auto root = std::make_shared<Schema>();
  root->AddSubSchema("splunk", splunk);
  auto jdbc = std::make_shared<JdbcSchema>(mysql);
  root->AddSubSchema("mysql", jdbc);
  return {root, mysql, jdbc};
}

/// Prints a headline block once per binary (used by the table-reproduction
/// benches to emit the regenerated paper artifact alongside the timings).
inline void PrintOnce(const std::string& text) {
  static std::mutex mu;
  static std::vector<std::string> printed;
  std::lock_guard<std::mutex> lock(mu);
  for (const std::string& p : printed) {
    if (p == text) return;
  }
  printed.push_back(text);
  std::fputs(text.c_str(), stdout);
  std::fflush(stdout);
}

}  // namespace calcite::bench

#endif  // CALCITE_BENCH_BENCH_COMMON_H_
