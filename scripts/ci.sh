#!/usr/bin/env bash
# CI entry point: configure -> build -> ctest -> bench smoke-run.
# Usage: scripts/ci.sh [build-dir] [sanitizer]
#   scripts/ci.sh build           # regular build + full test suite + bench smoke
#   scripts/ci.sh build-tsan thread
#                                 # ThreadSanitizer build; runs the
#                                 # concurrency-focused tests (the morsel-driven
#                                 # parallel executor and the linq exchange
#                                 # combinator) race-checked
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
SANITIZER="${2:-}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

if [[ -n "$SANITIZER" ]]; then
  echo "=== configure ($SANITIZER sanitizer) ==="
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCALCITE_SANITIZE="$SANITIZER"

  echo "=== build ==="
  cmake --build "$BUILD_DIR" -j "$JOBS"

  echo "=== test (concurrency suites under $SANITIZER) ==="
  # Sanitizers multiply runtimes ~10x, so this job runs the suites that
  # exercise the parallel subsystem rather than the whole battery: the
  # thread-count sweeps drive every parallel operator across thread x batch
  # combinations, which is exactly the surface a race would hide in.
  # --no-tests=error: a green race-check that ran zero tests (missing
  # GTest, filter typo) must fail loudly, not pass silently.
  ctest --test-dir "$BUILD_DIR" --output-on-failure --no-tests=error \
    -R 'parallel_exec_test|linq_batch_test|batch_parity_test'

  echo "=== done ($SANITIZER) ==="
  exit 0
fi

echo "=== configure ==="
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo

echo "=== build ==="
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "=== test ==="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "=== bench smoke ==="
# Quick benchmarks exercise the batched execution engine end-to-end
# (parse -> plan -> vectorized pipeline) and the morsel-driven parallel
# executor (threaded scan/aggregate/join fragments) without turning CI
# into a perf run.
if [[ -x "$BUILD_DIR/bench_architecture" ]]; then
  "$BUILD_DIR/bench_architecture" \
    --benchmark_filter='BM_BatchSizeSweep|BM_Stage5_Execute|BM_ParallelSweep' \
    --benchmark_min_time=0.05
else
  echo "bench_architecture not built (google-benchmark not found); skipping"
fi

echo "=== done ==="
