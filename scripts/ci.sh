#!/usr/bin/env bash
# CI entry point: configure -> build -> ctest -> bench smoke-run.
# Usage: scripts/ci.sh [build-dir] [sanitizer|scalar]
#   scripts/ci.sh build           # regular build + full test suite + bench smoke
#   scripts/ci.sh build-tsan thread
#                                 # ThreadSanitizer build; runs the
#                                 # concurrency-focused tests (the morsel-driven
#                                 # parallel executor and the linq exchange
#                                 # combinator) race-checked
#   scripts/ci.sh build-asan address,undefined
#                                 # ASan+UBSan build; runs the batch-engine,
#                                 # parity, and expression-kernel fuzz suites —
#                                 # selection-vector indexing and the fused
#                                 # batch kernels are exactly where
#                                 # out-of-bounds reads would hide
#   scripts/ci.sh build-scalar scalar
#                                 # -DCALCITE_SIMD=OFF build; proves the scalar
#                                 # kernel path (the only one on non-x86 or
#                                 # old-toolchain hosts) still passes the
#                                 # differential fuzz and parity suites
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
SANITIZER="${2:-}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

if [[ "$SANITIZER" == "scalar" ]]; then
  echo "=== configure (CALCITE_SIMD=OFF) ==="
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCALCITE_SIMD=OFF

  echo "=== build ==="
  cmake --build "$BUILD_DIR" -j "$JOBS"

  echo "=== test (kernel suites, scalar dispatch only) ==="
  # With CALCITE_SIMD=OFF every simd:: entry point compiles to the scalar
  # reference and ScopedDispatch(true) is a no-op, so the differential
  # suites prove the portable path alone produces the oracle results.
  ctest --test-dir "$BUILD_DIR" --output-on-failure --no-tests=error \
    -R 'simd_kernels_test|rex_kernel_fuzz_test|rex_fuse_test|batch_parity_test|columnar_parity_test|row_batch_test'

  echo "=== done (scalar) ==="
  exit 0
fi

if [[ -n "$SANITIZER" ]]; then
  echo "=== configure ($SANITIZER sanitizer) ==="
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCALCITE_SANITIZE="$SANITIZER"

  echo "=== build ==="
  cmake --build "$BUILD_DIR" -j "$JOBS"

  echo "=== test (focused suites under $SANITIZER) ==="
  # Sanitizers multiply runtimes ~10x, so each job runs the suites aimed at
  # the bug class it detects rather than the whole battery.
  # - thread: the thread-count sweeps drive every parallel operator across
  #   thread x batch combinations, exactly the surface a race hides in.
  # - address/undefined: the batch-engine unit tests, the batch/row parity
  #   sweeps, and the randomized expression-kernel fuzz harness hammer
  #   selection-vector indexing and the fused kernels, exactly the surface
  #   an out-of-bounds access or overflow hides in.
  # --no-tests=error: a green sanitizer run that executed zero tests
  # (missing GTest, filter typo) must fail loudly, not pass silently.
  # The columnar differential suite runs under both: its parallel sweeps
  # ship arena-backed ColumnBatches across the exchange (TSan: the arena
  # recycling and zero-copy pin lifetimes), and its kernels index raw typed
  # columns through selection vectors (ASan/UBSan). The storage suite also
  # runs under both: buffer-pool pin/evict bookkeeping and paged parallel
  # scans share frames across morsel workers (TSan), and the slotted-page /
  # record-codec byte arithmetic plus B-tree node layouts are exactly where
  # an out-of-bounds page access hides (ASan/UBSan); the parity suites
  # additionally drive DiskTable scans end-to-end both ways. The stats suite
  # runs under both for the same reason: ANALYZE streams every page through
  # the pool and the stats catalog codec does raw record byte arithmetic
  # (ASan/UBSan), while cost-based scans race the last_scan_used_index
  # introspection (TSan). The SIMD kernels run under both too: the fuzz and
  # parity suites force every kernel through SIMD and scalar dispatch
  # (ASan/UBSan catch lane over-reads past the tail; TSan sees the runtime
  # dispatch flag crossing the parallel sweeps), and simd_kernels_test
  # diffs each intrinsic path against its scalar reference. The fused
  # bytecode interpreter (rex_fuse_test plus the three-way fuzz
  # differential) runs under both: its register scratch aliases input
  # batch storage block-by-block (ASan catches a stale alias or a
  # CompactSel write-ahead overrun), and the morsel-parallel sweeps build
  # per-worker FusedExpr state that must never share mutable scratch
  # (TSan). The fuzz differential itself runs under TSan as well — it is
  # single-threaded, but flipping the runtime dispatch flag while fused
  # programs cache compiled state is exactly where an unsynchronized
  # shared-program mutation would surface. alloc_count_test is excluded
  # everywhere: it overrides global
  # operator new, which fights the sanitizer allocators.
  if [[ "$SANITIZER" == *thread* ]]; then
    FILTER='parallel_exec_test|linq_batch_test|batch_parity_test|columnar_parity_test|rex_fuse_test|rex_kernel_fuzz_test|storage_test|stats_test'
  else
    FILTER='row_batch_test|rex_kernel_fuzz_test|rex_fuse_test|simd_kernels_test|batch_parity_test|linq_batch_test|parallel_exec_test|columnar_parity_test|storage_test|stats_test'
  fi
  ctest --test-dir "$BUILD_DIR" --output-on-failure --no-tests=error \
    -R "$FILTER"

  if [[ "$SANITIZER" != *thread* ]]; then
    echo "=== fuzz (raised iterations under $SANITIZER) ==="
    # The three-way fused-vs-per-node-vs-per-row differential gets a
    # dedicated deep run: 5x the default iteration budget, under the
    # sanitizer that would catch the out-of-bounds reads a lowering bug
    # produces.
    REX_FUZZ_ITERS=5 ctest --test-dir "$BUILD_DIR" --output-on-failure \
      --no-tests=error -R 'rex_kernel_fuzz_test'
  fi

  echo "=== done ($SANITIZER) ==="
  exit 0
fi

echo "=== configure ==="
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo

echo "=== build ==="
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "=== test ==="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "=== fuzz (raised iterations) ==="
# Dedicated deep run of the fused-vs-per-node-vs-per-row differential:
# 5x the default per-test iteration budget on the fast non-sanitized build.
REX_FUZZ_ITERS=5 ctest --test-dir "$BUILD_DIR" --output-on-failure \
  --no-tests=error -R 'rex_kernel_fuzz_test'

echo "=== bench smoke ==="
# Quick benchmarks exercise the batched execution engine end-to-end
# (parse -> plan -> vectorized pipeline) and the morsel-driven parallel
# executor (threaded scan/aggregate/join fragments) without turning CI
# into a perf run.
if [[ -x "$BUILD_DIR/bench_architecture" ]]; then
  "$BUILD_DIR/bench_architecture" \
    --benchmark_filter='BM_BatchSizeSweep|BM_FilterPushdownSweep|BM_Stage5_Execute|BM_ParallelSweep|BM_IndexScanVsFullScan|BM_CostBasedAccessPath' \
    --benchmark_min_time=0.05
else
  echo "bench_architecture not built (google-benchmark not found); skipping"
fi
if [[ -x "$BUILD_DIR/bench_kernels" ]]; then
  "$BUILD_DIR/bench_kernels" --benchmark_min_time=0.05
else
  echo "bench_kernels not built (google-benchmark not found); skipping"
fi

echo "=== done ==="
