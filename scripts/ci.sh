#!/usr/bin/env bash
# CI entry point: configure -> build -> ctest -> bench smoke-run.
# Usage: scripts/ci.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "=== configure ==="
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo

echo "=== build ==="
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "=== test ==="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "=== bench smoke ==="
# One quick benchmark exercises the batched execution engine end-to-end
# (parse -> plan -> vectorized pipeline) without turning CI into a perf run.
if [[ -x "$BUILD_DIR/bench_architecture" ]]; then
  "$BUILD_DIR/bench_architecture" \
    --benchmark_filter='BM_BatchSizeSweep|BM_Stage5_Execute' \
    --benchmark_min_time=0.05
else
  echo "bench_architecture not built (google-benchmark not found); skipping"
fi

echo "=== done ==="
