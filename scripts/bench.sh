#!/usr/bin/env bash
# Perf-trajectory capture: runs the architecture benchmark suite and writes
# its JSON output to BENCH_<label>.json at the repo root, so every PR can
# check in a before/after pair measured on the same machine.
#
# Usage: scripts/bench.sh [build-dir] [benchmark-filter] [--out LABEL]
#   scripts/bench.sh                         # default build dir + filter
#   scripts/bench.sh build all               # every benchmark in the binary
#   scripts/bench.sh build all --out after   # -> BENCH_after.json
#
# Without --out, the label is the short git SHA plus a -dirty suffix when
# the working tree has changes. That default collides when a PR captures
# both its "before" (clean seed) and "after" (same commit, now dirty —
# or worse, two captures at the same SHA): the second run silently
# overwrites the first. Passing an explicit --out label keeps both.
#
# The default filter covers the hot-path sweeps the perf acceptance criteria
# track (BM_BatchSizeSweep, BM_FilterPushdownSweep) plus the end-to-end
# stage and parallel sweeps for context.
set -euo pipefail

cd "$(dirname "$0")/.."

LABEL=""
ARGS=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --out)
      [[ $# -ge 2 ]] || { echo "error: --out needs a label" >&2; exit 2; }
      LABEL="$2"
      shift 2
      ;;
    --out=*)
      LABEL="${1#--out=}"
      shift
      ;;
    *)
      ARGS+=("$1")
      shift
      ;;
  esac
done
BUILD_DIR="${ARGS[0]:-build}"
FILTER="${ARGS[1]:-BM_BatchSizeSweep|BM_FilterPushdownSweep|BM_Stage5_Execute|BM_ParallelSweep|BM_IndexScanVsFullScan|BM_CostBasedAccessPath}"
if [[ "$FILTER" == "all" ]]; then FILTER='.'; fi

if [[ ! -x "$BUILD_DIR/bench_architecture" ]]; then
  echo "=== configure + build ($BUILD_DIR) ==="
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$BUILD_DIR" -j "$(nproc 2>/dev/null || echo 4)" \
    --target bench_architecture
fi

if [[ -z "$LABEL" ]]; then
  SHA="$(git rev-parse --short HEAD)"
  DIRTY=""
  git diff --quiet HEAD -- ':!BENCH_*.json' 2>/dev/null || DIRTY="-dirty"
  LABEL="${SHA}${DIRTY}"
fi
OUT="BENCH_${LABEL}.json"

echo "=== bench -> $OUT (filter: $FILTER) ==="
"$BUILD_DIR/bench_architecture" \
  --benchmark_filter="$FILTER" \
  --benchmark_format=json \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  > "$OUT"

echo "=== summary ==="
python3 - "$OUT" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
for b in doc.get("benchmarks", []):
    if b.get("aggregate_name") not in (None, "median"):
        continue
    rps = b.get("counters", {}).get("rows_per_sec")
    extra = f"  rows/s={rps:,.0f}" if isinstance(rps, (int, float)) else ""
    print(f"{b['name']:<55} {b['real_time']:>12.3f} {b.get('time_unit','ns')}{extra}")
EOF
echo "=== done ==="
