#!/usr/bin/env bash
# Perf-trajectory capture: runs a benchmark binary and writes its JSON
# output to BENCH_<label>.json at the repo root, so every PR can check in a
# before/after pair measured on the same machine.
#
# Usage: scripts/bench.sh [build-dir] [benchmark-filter] [--bin NAME]
#                         [--out LABEL]
#   scripts/bench.sh                         # default build dir + filter
#   scripts/bench.sh build all               # every benchmark in the binary
#   scripts/bench.sh build all --out pr9-after       # -> BENCH_pr9-after.json
#   scripts/bench.sh build all --bin bench_kernels   # kernel microbenchmarks
#
# Checked-in captures follow the BENCH_pr<N>-{before,after}.json naming
# scheme: "before" measured at the PR's base commit, "after" at its head,
# both with the same filter on the same machine.
#
# Capture workflow for a PR's before/after pair:
#   1. "Before" runs from a worktree at the base commit so the working tree
#      does not have to be rolled back:
#        git worktree add .bench-before <base-sha>
#        (cd .bench-before && scripts/bench.sh build all)  # then copy out
#      When the benchmark source itself is new in the PR, copy bench/ and
#      scripts/ into the worktree first — benchmarks are written against the
#      base API so the same binary measures both sides.
#   2. NEVER capture while sanitizer builds/tests (scripts/ci.sh asan/tsan)
#      run concurrently: on a small container they inflate medians ~2x and
#      the pair stops being comparable. Let them finish first.
#   3. --out pr<N>-before / --out pr<N>-after names the files; git add both.
#
# Without --out, the label is the short git SHA plus a -dirty suffix when
# the working tree has changes. That default collides when a PR captures
# both its "before" (clean seed) and "after" (same commit, now dirty —
# or worse, two captures at the same SHA): the second run silently
# overwrites the first. Passing an explicit --out label keeps both.
#
# The default filter covers the hot-path sweeps the perf acceptance criteria
# track (BM_BatchSizeSweep, BM_FilterPushdownSweep) plus the end-to-end
# stage and parallel sweeps for context. With --bin bench_kernels, pass
# "all" (or a BM_Kernel* filter) — the default filter matches nothing there.
set -euo pipefail

cd "$(dirname "$0")/.."

usage() { sed -n '2,40p' "$0" | sed 's/^# \{0,1\}//'; }

LABEL=""
BIN="bench_architecture"
ARGS=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --help|-h)
      usage
      exit 0
      ;;
    --bin)
      [[ $# -ge 2 ]] || { echo "error: --bin needs a target" >&2; exit 2; }
      BIN="$2"
      shift 2
      ;;
    --bin=*)
      BIN="${1#--bin=}"
      shift
      ;;
    --out)
      [[ $# -ge 2 ]] || { echo "error: --out needs a label" >&2; exit 2; }
      LABEL="$2"
      shift 2
      ;;
    --out=*)
      LABEL="${1#--out=}"
      shift
      ;;
    *)
      ARGS+=("$1")
      shift
      ;;
  esac
done
BUILD_DIR="${ARGS[0]:-build}"
FILTER="${ARGS[1]:-BM_BatchSizeSweep|BM_FilterPushdownSweep|BM_Stage5_Execute|BM_ParallelSweep|BM_IndexScanVsFullScan|BM_CostBasedAccessPath}"
if [[ "$FILTER" == "all" ]]; then FILTER='.'; fi

if [[ ! -x "$BUILD_DIR/$BIN" ]]; then
  echo "=== configure + build ($BUILD_DIR) ==="
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$BUILD_DIR" -j "$(nproc 2>/dev/null || echo 4)" \
    --target "$BIN"
fi

if [[ -z "$LABEL" ]]; then
  SHA="$(git rev-parse --short HEAD)"
  DIRTY=""
  git diff --quiet HEAD -- ':!BENCH_*.json' 2>/dev/null || DIRTY="-dirty"
  LABEL="${SHA}${DIRTY}"
fi
OUT="BENCH_${LABEL}.json"

echo "=== bench -> $OUT (filter: $FILTER) ==="
"$BUILD_DIR/$BIN" \
  --benchmark_filter="$FILTER" \
  --benchmark_format=json \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  > "$OUT"

echo "=== summary ==="
python3 - "$OUT" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
for b in doc.get("benchmarks", []):
    if b.get("aggregate_name") not in (None, "median"):
        continue
    rps = b.get("counters", {}).get("rows_per_sec")
    extra = f"  rows/s={rps:,.0f}" if isinstance(rps, (int, float)) else ""
    print(f"{b['name']:<55} {b['real_time']:>12.3f} {b.get('time_unit','ns')}{extra}")
EOF
echo "=== done ==="
