// Unit and differential tests of the out-of-core storage engine
// (src/storage/): disk manager page I/O, buffer pool pin/evict/write-back
// discipline, the row codec, randomized B-tree workloads checked against a
// std::map oracle, and the DiskTable end-to-end surface — heap scans,
// index-range routing of pushed predicates, persistence across reopen, and
// the paged scan-unit tiling the parallel executor consumes. Every test
// works in its own temp directory, removed on teardown.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/disk_table.h"
#include "storage/page.h"
#include "storage/row_codec.h"
#include "type/rel_data_type.h"

namespace calcite::storage {
namespace {

#define ASSERT_OK(expr)                                 \
  do {                                                  \
    const ::calcite::Status _st = (expr);               \
    ASSERT_TRUE(_st.ok()) << _st.message();             \
  } while (0)

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/calcite_storage_XXXXXX";
    char* dir = mkdtemp(tmpl);
    ASSERT_NE(dir, nullptr);
    dir_ = dir;
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  std::string dir_;
};

// ---------------------------------------------------------------------------
// Disk manager
// ---------------------------------------------------------------------------

TEST_F(StorageTest, DiskManagerRoundTripAndZeroFill) {
  auto disk = DiskManager::Open(Path("t.db"), /*truncate=*/true);
  ASSERT_OK(disk.status());
  DiskManager& dm = **disk;

  PageId a = dm.Allocate();
  PageId b = dm.Allocate();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);

  std::vector<char> page(kPageSize, 'x');
  ASSERT_OK(dm.WritePage(b, page.data()));

  // Page `a` was allocated but never written: reads zero-fill.
  std::vector<char> readback(kPageSize, 'q');
  ASSERT_OK(dm.ReadPage(a, readback.data()));
  EXPECT_TRUE(std::all_of(readback.begin(), readback.end(),
                          [](char c) { return c == 0; }));
  ASSERT_OK(dm.ReadPage(b, readback.data()));
  EXPECT_TRUE(std::all_of(readback.begin(), readback.end(),
                          [](char c) { return c == 'x'; }));
}

TEST_F(StorageTest, DiskManagerReopenSeesPageCount) {
  {
    auto disk = DiskManager::Open(Path("t.db"), /*truncate=*/true);
    ASSERT_OK(disk.status());
    std::vector<char> page(kPageSize, 7);
    for (int i = 0; i < 5; ++i) {
      ASSERT_OK((*disk)->WritePage((*disk)->Allocate(), page.data()));
    }
    ASSERT_OK((*disk)->Sync());
  }
  auto disk = DiskManager::Open(Path("t.db"), /*truncate=*/false);
  ASSERT_OK(disk.status());
  EXPECT_EQ((*disk)->page_count(), 5u);
}

// ---------------------------------------------------------------------------
// Slotted page
// ---------------------------------------------------------------------------

TEST_F(StorageTest, SlottedPageInsertUntilFull) {
  std::vector<char> buf(kPageSize);
  SlottedPage page(buf.data());
  page.Init(PageType::kHeap);

  const std::string record(100, 'r');
  std::vector<uint16_t> slots;
  while (true) {
    auto slot = page.Insert(record.data(), record.size());
    if (!slot.has_value()) break;
    slots.push_back(*slot);
  }
  // 4096 - 12 header = 4084 bytes; each record costs 100 + 4 slot = 104.
  EXPECT_EQ(slots.size(), (kPageSize - kPageHeaderSize) / 104);
  EXPECT_EQ(page.slot_count(), slots.size());
  for (uint16_t s : slots) {
    size_t len = 0;
    const char* bytes = page.Get(s, &len);
    EXPECT_EQ(std::string(bytes, len), record);
  }
}

// ---------------------------------------------------------------------------
// Buffer pool
// ---------------------------------------------------------------------------

TEST_F(StorageTest, BufferPoolEvictsWhenDataExceedsPool) {
  auto disk = DiskManager::Open(Path("t.db"), /*truncate=*/true);
  ASSERT_OK(disk.status());
  constexpr size_t kPoolPages = 4;
  constexpr size_t kDataPages = 64;
  BufferPool pool(disk->get(), kPoolPages);

  for (size_t i = 0; i < kDataPages; ++i) {
    PageId id = kInvalidPageId;
    auto guard = pool.New(&id);
    ASSERT_OK(guard.status());
    StoreAt<uint64_t>(guard->data(), 0, i);
    guard->MarkDirty();
  }
  // Each page is readable with its own bytes even though only 4 frames
  // exist: eviction wrote the dirty frames back, fetch reloads them.
  for (size_t i = 0; i < kDataPages; ++i) {
    auto guard = pool.Fetch(static_cast<PageId>(i));
    ASSERT_OK(guard.status());
    EXPECT_EQ(LoadAt<uint64_t>(guard->data(), 0), i);
  }
  EXPECT_GE(pool.disk_reads(), kDataPages - kPoolPages);
  EXPECT_GE(pool.disk_writes(), kDataPages - kPoolPages);
  EXPECT_EQ(pool.pinned_frames(), 0u);
}

TEST_F(StorageTest, BufferPoolFailsWhenEveryFrameIsPinned) {
  auto disk = DiskManager::Open(Path("t.db"), /*truncate=*/true);
  ASSERT_OK(disk.status());
  BufferPool pool(disk->get(), 2);

  PageId id = kInvalidPageId;
  auto g1 = pool.New(&id);
  ASSERT_OK(g1.status());
  auto g2 = pool.New(&id);
  ASSERT_OK(g2.status());
  EXPECT_EQ(pool.pinned_frames(), 2u);

  auto g3 = pool.New(&id);
  EXPECT_FALSE(g3.ok());

  // Dropping one pin frees a frame; the pool recovers.
  g1->Release();
  EXPECT_EQ(pool.pinned_frames(), 1u);
  auto g4 = pool.New(&id);
  ASSERT_OK(g4.status());
}

TEST_F(StorageTest, BufferPoolPinCountsDropToZero) {
  auto disk = DiskManager::Open(Path("t.db"), /*truncate=*/true);
  ASSERT_OK(disk.status());
  BufferPool pool(disk->get(), 8);
  {
    std::vector<PageGuard> guards;
    for (int i = 0; i < 6; ++i) {
      PageId id = kInvalidPageId;
      auto guard = pool.New(&id);
      ASSERT_OK(guard.status());
      guards.push_back(std::move(*guard));
    }
    // Re-fetch one page through a second guard: pin counts nest.
    auto again = pool.Fetch(guards[0].id());
    ASSERT_OK(again.status());
    EXPECT_EQ(pool.pinned_frames(), 6u);
  }
  EXPECT_EQ(pool.pinned_frames(), 0u);  // the leak assertion
}

TEST_F(StorageTest, DirtyPagesSurvivePoolTeardownAndReopen) {
  {
    auto disk = DiskManager::Open(Path("t.db"), /*truncate=*/true);
    ASSERT_OK(disk.status());
    BufferPool pool(disk->get(), 4);
    for (size_t i = 0; i < 16; ++i) {
      PageId id = kInvalidPageId;
      auto guard = pool.New(&id);
      ASSERT_OK(guard.status());
      StoreAt<uint64_t>(guard->data(), 8, i * 31);
      guard->MarkDirty();
    }
    // No explicit FlushAll: the pool destructor must write back.
  }
  auto disk = DiskManager::Open(Path("t.db"), /*truncate=*/false);
  ASSERT_OK(disk.status());
  BufferPool pool(disk->get(), 4);
  for (size_t i = 0; i < 16; ++i) {
    auto guard = pool.Fetch(static_cast<PageId>(i));
    ASSERT_OK(guard.status());
    EXPECT_EQ(LoadAt<uint64_t>(guard->data(), 8), i * 31);
  }
}

// ---------------------------------------------------------------------------
// Row codec
// ---------------------------------------------------------------------------

TEST_F(StorageTest, RowCodecRoundTrip) {
  std::vector<Row> rows = {
      {},
      {Value::Null()},
      {Value::Bool(true), Value::Bool(false)},
      {Value::Int(0), Value::Int(-1), Value::Int(INT64_MAX),
       Value::Int(INT64_MIN)},
      {Value::Double(0.0), Value::Double(-2.5), Value::Double(1e300)},
      {Value::String(""), Value::String("hello"),
       Value::String(std::string(3000, 'z'))},
      {Value::Int(42), Value::Null(), Value::String("mixed"),
       Value::Double(3.25), Value::Bool(true)},
  };
  for (const Row& row : rows) {
    std::string encoded;
    ASSERT_OK(EncodeRow(row, &encoded));
    auto decoded = DecodeRow(encoded.data(), encoded.size());
    ASSERT_OK(decoded.status());
    ASSERT_EQ(decoded->size(), row.size());
    for (size_t i = 0; i < row.size(); ++i) {
      EXPECT_TRUE((*decoded)[i] == row[i])
          << "field " << i << ": " << (*decoded)[i].ToString() << " vs "
          << row[i].ToString();
    }
  }
}

TEST_F(StorageTest, RowCodecRejectsCompositesAndCorruption) {
  std::string encoded;
  EXPECT_FALSE(EncodeRow({Value::Array({Value::Int(1)})}, &encoded).ok());

  encoded.clear();
  ASSERT_OK(EncodeRow({Value::Int(7), Value::String("abc")}, &encoded));
  // Truncations at every prefix length must fail, never crash.
  for (size_t len = 0; len < encoded.size(); ++len) {
    EXPECT_FALSE(DecodeRow(encoded.data(), len).ok()) << "prefix " << len;
  }
  // Trailing garbage is also rejected.
  std::string padded = encoded + "!";
  EXPECT_FALSE(DecodeRow(padded.data(), padded.size()).ok());
}

// ---------------------------------------------------------------------------
// B-tree vs std::map oracle
// ---------------------------------------------------------------------------

struct BTreeFixture {
  std::unique_ptr<DiskManager> disk;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<BTree> tree;
};

BTreeFixture MakeBTree(const std::string& path, size_t pool_pages) {
  BTreeFixture f;
  auto disk = DiskManager::Open(path, /*truncate=*/true);
  EXPECT_TRUE(disk.ok());
  f.disk = std::move(*disk);
  f.pool = std::make_unique<BufferPool>(f.disk.get(), pool_pages);
  auto root = BTree::CreateEmpty(f.pool.get());
  EXPECT_TRUE(root.ok());
  f.tree = std::make_unique<BTree>(f.pool.get(), *root);
  return f;
}

Rid RidFor(int64_t key) {
  return Rid{static_cast<PageId>(key % 977 + 1),
             static_cast<uint16_t>(key % 91)};
}

TEST_F(StorageTest, BTreeRandomizedInsertLookupVsMapOracle) {
  // Several seeds, enough keys to force multi-level splits (leaf capacity
  // is 291, internal fanout 341 — 20k keys gives a 3-level tree).
  for (uint32_t seed : {1u, 42u, 20260807u}) {
    BTreeFixture f = MakeBTree(Path("bt" + std::to_string(seed) + ".db"), 64);
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<int64_t> dist(-1000000, 1000000);

    std::map<int64_t, Rid> oracle;
    for (int i = 0; i < 20000; ++i) {
      int64_t key = dist(rng);
      Status st = f.tree->Insert(key, RidFor(key));
      if (oracle.count(key)) {
        EXPECT_FALSE(st.ok()) << "duplicate key " << key << " accepted";
      } else {
        ASSERT_OK(st);
        oracle.emplace(key, RidFor(key));
      }
    }

    // Point lookups: every oracle key hits with the right rid; probes
    // around each sampled key miss exactly when the oracle misses.
    size_t checked = 0;
    for (const auto& [key, rid] : oracle) {
      if (++checked % 7 != 0) continue;  // sample 1/7th, keep the test fast
      auto found = f.tree->Lookup(key);
      ASSERT_OK(found.status());
      ASSERT_TRUE(found->has_value()) << "key " << key;
      EXPECT_TRUE(**found == rid);
      auto probe = f.tree->Lookup(key + 1);
      ASSERT_OK(probe.status());
      EXPECT_EQ(probe->has_value(), oracle.count(key + 1) > 0);
    }
  }
}

TEST_F(StorageTest, BTreeRandomizedRangeScansVsMapOracle) {
  BTreeFixture f = MakeBTree(Path("bt_range.db"), 64);
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<int64_t> dist(0, 300000);

  std::map<int64_t, Rid> oracle;
  for (int i = 0; i < 15000; ++i) {
    int64_t key = dist(rng);
    if (oracle.count(key)) continue;
    ASSERT_OK(f.tree->Insert(key, RidFor(key)));
    oracle.emplace(key, RidFor(key));
  }

  for (int trial = 0; trial < 50; ++trial) {
    int64_t a = dist(rng);
    int64_t b = dist(rng);
    int64_t lo = std::min(a, b);
    int64_t hi = std::max(a, b);
    auto got = f.tree->ScanRange(lo, hi);
    ASSERT_OK(got.status());

    auto it = oracle.lower_bound(lo);
    size_t n = 0;
    for (; it != oracle.end() && it->first <= hi; ++it, ++n) {
      ASSERT_LT(n, got->size()) << "range [" << lo << "," << hi << "]";
      EXPECT_EQ((*got)[n].key, it->first);
      EXPECT_TRUE((*got)[n].rid == it->second);
    }
    EXPECT_EQ(n, got->size());
  }

  // Degenerate ranges.
  auto empty = f.tree->ScanRange(10, 9);
  ASSERT_OK(empty.status());
  EXPECT_TRUE(empty->empty());
  auto all = f.tree->ScanRange(INT64_MIN, INT64_MAX);
  ASSERT_OK(all.status());
  EXPECT_EQ(all->size(), oracle.size());
}

TEST_F(StorageTest, BTreeSequentialAndReverseInsertions) {
  // Monotone insert orders hit the edge split paths (always-rightmost /
  // always-leftmost descents).
  for (bool reverse : {false, true}) {
    BTreeFixture f =
        MakeBTree(Path(reverse ? "bt_rev.db" : "bt_seq.db"), 64);
    constexpr int64_t kN = 5000;
    for (int64_t i = 0; i < kN; ++i) {
      int64_t key = reverse ? kN - 1 - i : i;
      ASSERT_OK(f.tree->Insert(key, RidFor(key)));
    }
    auto all = f.tree->ScanRange(INT64_MIN, INT64_MAX);
    ASSERT_OK(all.status());
    ASSERT_EQ(all->size(), static_cast<size_t>(kN));
    for (int64_t i = 0; i < kN; ++i) {
      EXPECT_EQ((*all)[i].key, i);
    }
  }
}

TEST_F(StorageTest, BTreeWorksThroughTinyPool) {
  // The whole tree (many levels of pages) cycles through 8 frames; pins
  // must stay bounded and nothing may leak.
  BTreeFixture f = MakeBTree(Path("bt_tiny.db"), 8);
  std::mt19937_64 rng(13);
  std::vector<int64_t> keys(8000);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = static_cast<int64_t>(i);
  std::shuffle(keys.begin(), keys.end(), rng);
  for (int64_t key : keys) {
    ASSERT_OK(f.tree->Insert(key, RidFor(key)));
  }
  EXPECT_EQ(f.pool->pinned_frames(), 0u);
  EXPECT_GT(f.pool->disk_reads(), f.pool->capacity());

  auto got = f.tree->ScanRange(100, 7900);
  ASSERT_OK(got.status());
  EXPECT_EQ(got->size(), 7801u);
  EXPECT_EQ(f.pool->pinned_frames(), 0u);
}

// ---------------------------------------------------------------------------
// DiskTable
// ---------------------------------------------------------------------------

RelDataTypePtr DiskRowType(const TypeFactory& tf) {
  auto int_t = tf.CreateSqlType(SqlTypeName::kInteger);
  auto str_null = tf.CreateSqlType(SqlTypeName::kVarchar, 20, true);
  auto dbl_null = tf.CreateSqlType(SqlTypeName::kDouble, -1, true);
  return tf.CreateStructType({"id", "name", "score"},
                             {int_t, str_null, dbl_null});
}

Row DiskRow(int64_t id) {
  return {Value::Int(id),
          id % 5 == 0 ? Value::Null()
                      : Value::String("n" + std::to_string(id % 23)),
          id % 4 == 0 ? Value::Null()
                      : Value::Double(static_cast<double>(id % 17) * 0.5)};
}

std::vector<Row> DiskRows(int64_t n) {
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) rows.push_back(DiskRow(i));
  return rows;
}

std::vector<Row> Drain(const RowBatchPuller& puller) {
  std::vector<Row> out;
  for (;;) {
    auto batch = puller();
    EXPECT_TRUE(batch.ok()) << batch.status().message();
    if (!batch.ok() || batch->empty()) break;
    for (Row& row : *batch) out.push_back(std::move(row));
  }
  return out;
}

void ExpectSameRows(std::vector<Row> a, std::vector<Row> b) {
  auto key_order = [](const Row& x, const Row& y) {
    return x[0].AsInt() < y[0].AsInt();
  };
  std::sort(a.begin(), a.end(), key_order);
  std::sort(b.begin(), b.end(), key_order);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size());
    for (size_t c = 0; c < a[i].size(); ++c) {
      EXPECT_TRUE(a[i][c] == b[i][c]) << "row " << i << " col " << c;
    }
  }
}

TEST_F(StorageTest, DiskTableScanMatchesInsertedRows) {
  TypeFactory tf;
  DiskTableOptions opts;
  opts.pool_pages = 16;  // table will span far more pages than this
  auto table = DiskTable::Create(Path("t.db"), DiskRowType(tf), 0, opts);
  ASSERT_OK(table.status());
  auto rows = DiskRows(5000);
  ASSERT_OK((*table)->InsertRows(rows));

  EXPECT_EQ((*table)->row_count(), 5000u);
  EXPECT_GT((*table)->heap_page_count(), opts.pool_pages);

  auto scanned = (*table)->Scan();
  ASSERT_OK(scanned.status());
  ExpectSameRows(*scanned, rows);

  auto puller = (*table)->ScanBatched(333);
  ASSERT_OK(puller.status());
  ExpectSameRows(Drain(*puller), rows);
  EXPECT_EQ((*table)->buffer_pool().pinned_frames(), 0u);
}

TEST_F(StorageTest, DiskTableRejectsBadKeys) {
  TypeFactory tf;
  auto table = DiskTable::Create(Path("t.db"), DiskRowType(tf), 0);
  ASSERT_OK(table.status());
  ASSERT_OK((*table)->InsertRows(DiskRows(10)));

  EXPECT_FALSE((*table)->InsertRows({DiskRow(5)}).ok());  // duplicate
  Row null_key = DiskRow(100);
  null_key[0] = Value::Null();
  EXPECT_FALSE((*table)->InsertRows({null_key}).ok());
  Row string_key = DiskRow(101);
  string_key[0] = Value::String("nope");
  EXPECT_FALSE((*table)->InsertRows({string_key}).ok());
  EXPECT_EQ((*table)->row_count(), 10u);
}

TEST_F(StorageTest, DiskTableIndexScanMatchesHeapScan) {
  TypeFactory tf;
  DiskTableOptions opts;
  opts.pool_pages = 16;
  auto table = DiskTable::Create(Path("t.db"), DiskRowType(tf), 0, opts);
  ASSERT_OK(table.status());
  ASSERT_OK((*table)->InsertRows(DiskRows(8000)));
  DiskTable& t = **table;

  struct Case {
    ScanPredicate::Kind kind;
    Value literal;
    bool expect_index;
  };
  const std::vector<Case> cases = {
      {ScanPredicate::Kind::kEquals, Value::Int(4242), true},
      {ScanPredicate::Kind::kLessThan, Value::Int(100), true},
      {ScanPredicate::Kind::kGreaterThanOrEqual, Value::Int(7900), true},
      {ScanPredicate::Kind::kGreaterThan, Value::Double(7899.5), true},
      {ScanPredicate::Kind::kLessThanOrEqual, Value::Double(99.25), true},
      {ScanPredicate::Kind::kEquals, Value::Double(10.5), true},  // empty
      {ScanPredicate::Kind::kEquals, Value::Null(), true},        // empty
      {ScanPredicate::Kind::kIsNull, Value::Null(), true},        // empty
      {ScanPredicate::Kind::kNotEquals, Value::Int(5), false},
      {ScanPredicate::Kind::kIsNotNull, Value::Null(), false},
  };
  for (const Case& c : cases) {
    ScanPredicate pred;
    pred.kind = c.kind;
    pred.column = 0;
    pred.literal = c.literal;

    t.set_index_scan_enabled(true);
    auto with_index = t.ScanBatchedFiltered(512, {pred});
    ASSERT_OK(with_index.status());
    auto index_rows = Drain(*with_index);
    EXPECT_EQ(t.last_scan_used_index(), c.expect_index)
        << "kind " << static_cast<int>(c.kind);

    t.set_index_scan_enabled(false);
    auto without = t.ScanBatchedFiltered(512, {pred});
    ASSERT_OK(without.status());
    EXPECT_FALSE(t.last_scan_used_index());
    ExpectSameRows(index_rows, Drain(*without));
  }
  t.set_index_scan_enabled(true);

  // Conjunction: both bounds land on the key; a residual predicate on
  // another column is re-applied on the index path.
  ScanPredicate lo;
  lo.kind = ScanPredicate::Kind::kGreaterThanOrEqual;
  lo.column = 0;
  lo.literal = Value::Int(1000);
  ScanPredicate hi;
  hi.kind = ScanPredicate::Kind::kLessThan;
  hi.column = 0;
  hi.literal = Value::Int(2000);
  ScanPredicate residual;
  residual.kind = ScanPredicate::Kind::kIsNotNull;
  residual.column = 2;
  auto both = t.ScanBatchedFiltered(512, {lo, hi, residual});
  ASSERT_OK(both.status());
  auto got = Drain(*both);
  EXPECT_TRUE(t.last_scan_used_index());
  size_t expected = 0;
  for (int64_t id = 1000; id < 2000; ++id) {
    if (id % 4 != 0) ++expected;
  }
  EXPECT_EQ(got.size(), expected);
  for (const Row& row : got) {
    EXPECT_GE(row[0].AsInt(), 1000);
    EXPECT_LT(row[0].AsInt(), 2000);
    EXPECT_FALSE(row[2].IsNull());
  }
  EXPECT_EQ(t.buffer_pool().pinned_frames(), 0u);
}

TEST_F(StorageTest, DiskTableScanUnitsTileTheTable) {
  TypeFactory tf;
  DiskTableOptions opts;
  opts.pool_pages = 16;
  opts.pages_per_run = 3;
  auto table = DiskTable::Create(Path("t.db"), DiskRowType(tf), 0, opts);
  ASSERT_OK(table.status());
  auto rows = DiskRows(4000);
  ASSERT_OK((*table)->InsertRows(rows));

  size_t units = (*table)->ScanUnitCount();
  ASSERT_GT(units, 1u);
  std::vector<Row> concatenated;
  for (size_t u = 0; u < units; ++u) {
    auto unit_rows = (*table)->ScanUnitRows(u);
    ASSERT_OK(unit_rows.status());
    EXPECT_FALSE(unit_rows->empty());
    for (Row& row : *unit_rows) concatenated.push_back(std::move(row));
  }
  ExpectSameRows(concatenated, rows);
  EXPECT_FALSE((*table)->ScanUnitRows(units).ok());
}

TEST_F(StorageTest, DiskTablePersistsAcrossReopen) {
  TypeFactory tf;
  auto rows = DiskRows(3000);
  {
    DiskTableOptions opts;
    opts.pool_pages = 8;  // tiny pool: most pages reach disk via eviction
    auto table = DiskTable::Create(Path("t.db"), DiskRowType(tf), 0, opts);
    ASSERT_OK(table.status());
    ASSERT_OK((*table)->InsertRows(rows));
    ASSERT_OK((*table)->Flush());
  }
  auto reopened = DiskTable::Open(Path("t.db"), DiskRowType(tf));
  ASSERT_OK(reopened.status());
  DiskTable& t = **reopened;
  EXPECT_EQ(t.row_count(), 3000u);
  EXPECT_EQ(t.key_column(), 0);

  auto scanned = t.Scan();
  ASSERT_OK(scanned.status());
  ExpectSameRows(*scanned, rows);

  // The reopened index serves lookups and rejects re-insertion.
  ScanPredicate pred;
  pred.kind = ScanPredicate::Kind::kEquals;
  pred.column = 0;
  pred.literal = Value::Int(1234);
  auto hit = t.ScanBatchedFiltered(64, {pred});
  ASSERT_OK(hit.status());
  auto got = Drain(*hit);
  EXPECT_TRUE(t.last_scan_used_index());
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0][0].AsInt(), 1234);
  EXPECT_FALSE(t.InsertRows({DiskRow(1234)}).ok());

  // And accepts genuinely new keys.
  ASSERT_OK(t.InsertRows({DiskRow(999999)}));
  EXPECT_EQ(t.row_count(), 3001u);

  auto missing = DiskTable::Open(Path("absent.db"), DiskRowType(tf));
  EXPECT_FALSE(missing.ok());
}

}  // namespace
}  // namespace calcite::storage
