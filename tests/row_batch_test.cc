// Unit tests of the RowBatch runtime primitives (src/exec/row_batch.h):
// the chunking/slicing pullers at the boundary cardinalities the batch
// sweep exposed as untested (batch_size exceeding the row count, zero
// rows, exact multiples), batch compaction, the SelBatch selection
// carrier, and the leaf-scan predicate pushdown helpers.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exec/row_batch.h"
#include "type/value.h"

namespace calcite {
namespace {

std::vector<Row> MakeRows(size_t n) {
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back({Value::Int(static_cast<int64_t>(i)),
                    i % 3 == 0 ? Value::Null()
                               : Value::String("v" + std::to_string(i))});
  }
  return rows;
}

/// Drains `puller` by hand, recording every batch size, and verifies the
/// end-of-stream contract: no mid-stream empty batch, every batch within
/// the cap, and pulls after the end keep returning empty.
std::vector<Row> DrainChecked(const RowBatchPuller& puller, size_t batch_size,
                              std::vector<size_t>* batch_sizes = nullptr) {
  std::vector<Row> out;
  for (;;) {
    auto batch = puller();
    EXPECT_TRUE(batch.ok());
    if (batch.value().empty()) break;
    EXPECT_LE(batch.value().size(), batch_size);
    if (batch_sizes != nullptr) batch_sizes->push_back(batch.value().size());
    for (Row& row : batch.value()) out.push_back(std::move(row));
  }
  // The end of the stream is stable: further pulls stay empty.
  for (int i = 0; i < 3; ++i) {
    auto again = puller();
    EXPECT_TRUE(again.ok());
    if (again.ok()) {
      EXPECT_TRUE(again.value().empty());
    }
  }
  return out;
}

void ExpectRowsEqual(const std::vector<Row>& got,
                     const std::vector<Row>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(RowToString(got[i]), RowToString(want[i])) << "row " << i;
  }
}

TEST(ChunkRowsTest, BatchSizeExceedsRowCount) {
  std::vector<size_t> sizes;
  auto out = DrainChecked(ChunkRows(MakeRows(5), 100), 100, &sizes);
  ExpectRowsEqual(out, MakeRows(5));
  EXPECT_EQ(sizes, std::vector<size_t>({5}));
}

TEST(ChunkRowsTest, ZeroRows) {
  auto out = DrainChecked(ChunkRows({}, 4), 4);
  EXPECT_TRUE(out.empty());
}

TEST(ChunkRowsTest, ExactMultipleAndRemainder) {
  {
    std::vector<size_t> sizes;
    auto out = DrainChecked(ChunkRows(MakeRows(8), 4), 4, &sizes);
    ExpectRowsEqual(out, MakeRows(8));
    EXPECT_EQ(sizes, std::vector<size_t>({4, 4}));
  }
  {
    std::vector<size_t> sizes;
    auto out = DrainChecked(ChunkRows(MakeRows(9), 4), 4, &sizes);
    ExpectRowsEqual(out, MakeRows(9));
    EXPECT_EQ(sizes, std::vector<size_t>({4, 4, 1}));
  }
}

TEST(ChunkRowsTest, ZeroBatchSizeClampsToOne) {
  std::vector<size_t> sizes;
  auto out = DrainChecked(ChunkRows(MakeRows(3), 0), 1, &sizes);
  ExpectRowsEqual(out, MakeRows(3));
  EXPECT_EQ(sizes, std::vector<size_t>({1, 1, 1}));
}

TEST(SliceRowsTest, BatchSizeExceedsRowCount) {
  std::vector<Row> stored = MakeRows(5);
  std::vector<size_t> sizes;
  auto out = DrainChecked(SliceRows(stored, 1024), 1024, &sizes);
  ExpectRowsEqual(out, stored);
  EXPECT_EQ(sizes, std::vector<size_t>({5}));
}

TEST(SliceRowsTest, ZeroRows) {
  std::vector<Row> stored;
  auto out = DrainChecked(SliceRows(stored, 16), 16);
  EXPECT_TRUE(out.empty());
}

TEST(SliceRowsTest, ExactMultipleLeavesNoTrailingPartialBatch) {
  std::vector<Row> stored = MakeRows(6);
  std::vector<size_t> sizes;
  auto out = DrainChecked(SliceRows(stored, 3), 3, &sizes);
  ExpectRowsEqual(out, stored);
  EXPECT_EQ(sizes, std::vector<size_t>({3, 3}));
  // The stored rows are untouched (SliceRows copies; it never moves).
  ExpectRowsEqual(stored, MakeRows(6));
}

TEST(DrainBatchesTest, RoundTripsThroughChunks) {
  for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{8}}) {
    auto rows = DrainBatches(ChunkRows(MakeRows(n), 4));
    ASSERT_TRUE(rows.ok());
    ExpectRowsEqual(rows.value(), MakeRows(n));
  }
}

TEST(CompactBatchTest, EmptySelectionClearsBatch) {
  RowBatch batch = MakeRows(4);
  CompactBatch(&batch, {});
  EXPECT_TRUE(batch.empty());
}

TEST(CompactBatchTest, FullSelectionIsNoop) {
  RowBatch batch = MakeRows(4);
  CompactBatch(&batch, {0, 1, 2, 3});
  ExpectRowsEqual(batch, MakeRows(4));
}

TEST(CompactBatchTest, SparseSelectionKeepsOrder) {
  RowBatch batch = MakeRows(6);
  CompactBatch(&batch, {1, 4, 5});
  std::vector<Row> all = MakeRows(6);
  ExpectRowsEqual(batch, {all[1], all[4], all[5]});
}

TEST(SelBatchTest, ActiveIterationAndCompact) {
  SelBatch batch;
  batch.rows = MakeRows(5);
  EXPECT_EQ(batch.ActiveCount(), 5u);
  EXPECT_EQ(RowToString(batch.ActiveRow(2)), RowToString(MakeRows(5)[2]));

  batch.sel = {0, 3};
  batch.has_sel = true;
  EXPECT_EQ(batch.ActiveCount(), 2u);
  EXPECT_EQ(RowToString(batch.ActiveRow(1)), RowToString(MakeRows(5)[3]));

  batch.Compact();
  EXPECT_FALSE(batch.has_sel);
  std::vector<Row> all = MakeRows(5);
  ExpectRowsEqual(batch.rows, {all[0], all[3]});
}

TEST(SelBatchTest, EnsureSelectionBuildsIdentityOnce) {
  SelBatch batch;
  batch.rows = MakeRows(3);
  batch.EnsureSelection();
  EXPECT_TRUE(batch.has_sel);
  EXPECT_EQ(batch.sel, SelectionVector({0, 1, 2}));
  // Narrow, then EnsureSelection again must not reset it.
  batch.sel = {2};
  batch.EnsureSelection();
  EXPECT_EQ(batch.sel, SelectionVector({2}));
}

TEST(SelBatchBridgeTest, LiftAndCompactRoundTrip) {
  auto lifted = LiftToSelBatches(ChunkRows(MakeRows(5), 2));
  auto first = lifted();
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().has_sel);
  EXPECT_EQ(first.value().ActiveCount(), 2u);

  auto compacted = CompactSelBatches(LiftToSelBatches(ChunkRows(MakeRows(5), 2)));
  ExpectRowsEqual(DrainChecked(compacted, 2), MakeRows(5));
}

TEST(ScanPredicateTest, ComparisonAndNullSemantics) {
  Row row = {Value::Int(7), Value::Null(), Value::String("abc")};
  ScanPredicate gt;
  gt.kind = ScanPredicate::Kind::kGreaterThan;
  gt.column = 0;
  gt.literal = Value::Int(5);
  EXPECT_TRUE(gt.Matches(row));
  gt.literal = Value::Int(7);
  EXPECT_FALSE(gt.Matches(row));

  // NULL on either side of a comparison never passes (SQL UNKNOWN).
  ScanPredicate cmp_null_col = gt;
  cmp_null_col.column = 1;
  EXPECT_FALSE(cmp_null_col.Matches(row));
  ScanPredicate cmp_null_lit = gt;
  cmp_null_lit.literal = Value::Null();
  EXPECT_FALSE(cmp_null_lit.Matches(row));

  // ... but the NULL tests see it.
  ScanPredicate is_null;
  is_null.kind = ScanPredicate::Kind::kIsNull;
  is_null.column = 1;
  EXPECT_TRUE(is_null.Matches(row));
  is_null.kind = ScanPredicate::Kind::kIsNotNull;
  EXPECT_FALSE(is_null.Matches(row));

  // String comparison uses the same Value::Compare ordering as the
  // interpreter.
  ScanPredicate str_lt;
  str_lt.kind = ScanPredicate::Kind::kLessThan;
  str_lt.column = 2;
  str_lt.literal = Value::String("b");
  EXPECT_TRUE(str_lt.Matches(row));

  // Out-of-range columns never match (malformed row defense).
  ScanPredicate oob = gt;
  oob.column = 9;
  EXPECT_FALSE(oob.Matches(row));
}

TEST(FilterSliceRowsTest, FiltersBeforeBatching) {
  std::vector<Row> stored = MakeRows(10);
  ScanPredicateList preds;
  {
    ScanPredicate p;
    p.kind = ScanPredicate::Kind::kGreaterThanOrEqual;
    p.column = 0;
    p.literal = Value::Int(4);
    preds.push_back(p);
    p.kind = ScanPredicate::Kind::kIsNotNull;
    p.column = 1;
    preds.push_back(p);
  }
  // Expect rows 4..9 minus the NULL-second-column rows (multiples of 3).
  std::vector<Row> want;
  for (size_t i = 4; i < 10; ++i) {
    if (i % 3 != 0) want.push_back(stored[i]);
  }
  std::vector<size_t> sizes;
  auto out = DrainChecked(FilterSliceRows(stored, 3, preds), 3, &sizes);
  ExpectRowsEqual(out, want);
  // A fully-filtered stretch never surfaces as a mid-stream empty batch.
  for (size_t s : sizes) EXPECT_GT(s, 0u);
}

TEST(FilterSliceRowsTest, AllRowsFilteredYieldsCleanEnd) {
  std::vector<Row> stored = MakeRows(7);
  ScanPredicateList preds;
  ScanPredicate p;
  p.kind = ScanPredicate::Kind::kLessThan;
  p.column = 0;
  p.literal = Value::Int(0);
  preds.push_back(p);
  auto out = DrainChecked(FilterSliceRows(stored, 4, preds), 4);
  EXPECT_TRUE(out.empty());
}

TEST(FilterSliceRowsTest, EmptyPredicateListDegeneratesToSlice) {
  std::vector<Row> stored = MakeRows(5);
  auto out = DrainChecked(FilterSliceRows(stored, 2, {}), 2);
  ExpectRowsEqual(out, stored);
}

}  // namespace
}  // namespace calcite
