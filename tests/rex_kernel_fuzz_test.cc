// Randomized differential tests of the fused batch expression kernels
// (RexInterpreter::EvalBatchSel / NarrowSelection) and their columnar
// counterparts (RexColumnar::AppendEvalColumn / NarrowSelection): a small
// seeded random generator builds typed expression trees — arithmetic,
// comparison, logic, casts over columns with ~20% NULLs — and checks the
// batch kernels byte-identical against the per-row tree interpreter
// (RexInterpreter::Eval, the oracle) across batch sizes {1, 1023, 1024} and
// selection vectors of every shape (absent, empty, singleton, dense,
// sparse). The columnar checks run the same trees over the typed column
// decomposition of the same rows, so typed fast paths and the boxed
// fallback are both diffed against row semantics — and every columnar
// check additionally runs the tree-fusing bytecode interpreter
// (rex/rex_fuse.h), making each tree a three-way differential:
// fused-vs-per-node-vs-per-row, under both SIMD dispatch modes. A directed
// ternary-NULL-semantics regression pack locks in the three-valued-logic
// corners the kernels must preserve.
//
// The generator is error-free by construction (division and modulo only
// ever take a non-zero literal divisor, casts never parse arbitrary
// strings), so a Status failure from either engine is itself a bug. It
// also deliberately mixes fusible and unfusible operators (ABS, UPPER,
// string compares) so the fused path's whole-tree fallback is fuzzed as
// hard as its bytecode programs.
//
// REX_FUZZ_ITERS=<k> multiplies every iteration count by k — the dedicated
// CI fuzz step runs with a raised count; the default keeps local runs fast.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "exec/arena.h"
#include "exec/column_batch.h"
#include "exec/simd.h"
#include "rex/rex_builder.h"
#include "rex/rex_columnar.h"
#include "rex/rex_fuse.h"
#include "rex/rex_interpreter.h"
#include "type/rel_data_type.h"
#include "type/value.h"

namespace calcite {
namespace {

// Column layout of the fuzz batches:
//   $0 id INT NOT NULL   (row index)
//   $1 a  INT?           (~20% NULL)
//   $2 b  INT?           (~20% NULL)
//   $3 x  DOUBLE?        (~20% NULL)
//   $4 s  VARCHAR?       (~20% NULL)
//   $5 f  BOOLEAN?       (~20% NULL)
class RexKernelFuzzTest : public ::testing::Test {
 protected:
  /// Iteration scale factor: the dedicated CI fuzz step raises it via
  /// REX_FUZZ_ITERS=<k>; anything unset or non-positive means 1.
  static int FuzzScale() {
    const char* env = std::getenv("REX_FUZZ_ITERS");
    const int k = env != nullptr ? std::atoi(env) : 1;
    return k > 0 ? k : 1;
  }

  RexKernelFuzzTest() {
    int_t_ = tf_.CreateSqlType(SqlTypeName::kInteger);
    int_null_ = tf_.CreateSqlType(SqlTypeName::kInteger, -1, true);
    dbl_null_ = tf_.CreateSqlType(SqlTypeName::kDouble, -1, true);
    str_null_ = tf_.CreateSqlType(SqlTypeName::kVarchar, 32, true);
    bool_null_ = tf_.CreateSqlType(SqlTypeName::kBoolean, -1, true);
    row_type_ = tf_.CreateStructType(
        {"id", "a", "b", "x", "s", "f"},
        {int_t_, int_null_, int_null_, dbl_null_, str_null_, bool_null_});
  }

  RowBatch MakeBatch(size_t n, std::mt19937* rng, int null_pct = 20) {
    std::uniform_int_distribution<int> pct(0, 99);
    std::uniform_int_distribution<int64_t> small(-9, 20);
    std::uniform_real_distribution<double> real(-4.0, 8.0);
    std::uniform_int_distribution<int> word(0, 6);
    static const char* kWords[] = {"", "a", "ab", "abc", "s1", "s10", "zz"};
    RowBatch batch;
    batch.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      Row row;
      row.push_back(Value::Int(static_cast<int64_t>(i)));
      row.push_back(pct(*rng) < null_pct ? Value::Null()
                                         : Value::Int(small(*rng)));
      row.push_back(pct(*rng) < null_pct ? Value::Null()
                                         : Value::Int(small(*rng)));
      row.push_back(pct(*rng) < null_pct ? Value::Null()
                                         : Value::Double(real(*rng)));
      row.push_back(pct(*rng) < null_pct ? Value::Null()
                                         : Value::String(kWords[word(*rng)]));
      row.push_back(pct(*rng) < null_pct ? Value::Null()
                                         : Value::Bool(pct(*rng) < 50));
      batch.push_back(std::move(row));
    }
    return batch;
  }

  // ----------------------- random expression grammar -----------------------

  int Pick(std::mt19937* rng, int n) {
    return std::uniform_int_distribution<int>(0, n - 1)(*rng);
  }

  RexNodePtr NumLeaf(std::mt19937* rng) {
    switch (Pick(rng, 5)) {
      case 0:
        return rex_.MakeInputRef(row_type_, 0);
      case 1:
        return rex_.MakeInputRef(row_type_, 1);
      case 2:
        return rex_.MakeInputRef(row_type_, 2);
      case 3:
        return rex_.MakeInputRef(row_type_, 3);
      default:
        return Pick(rng, 2) == 0
                   ? rex_.MakeIntLiteral(
                         std::uniform_int_distribution<int64_t>(-5, 10)(*rng))
                   : rex_.MakeDoubleLiteral(
                         std::uniform_real_distribution<double>(-3.0, 5.0)(
                             *rng));
    }
  }

  RexNodePtr GenNumeric(std::mt19937* rng, int depth) {
    if (depth <= 0) return NumLeaf(rng);
    switch (Pick(rng, 8)) {
      case 0:
      case 1: {  // + - *
        static const OpKind kOps[] = {OpKind::kPlus, OpKind::kMinus,
                                      OpKind::kTimes};
        auto call = rex_.MakeCall(kOps[Pick(rng, 3)],
                                  {GenNumeric(rng, depth - 1),
                                   GenNumeric(rng, depth - 1)});
        return call.ok() ? call.value() : NumLeaf(rng);
      }
      case 2: {  // / and % with a guaranteed non-zero literal divisor
        OpKind op = Pick(rng, 2) == 0 ? OpKind::kDivide : OpKind::kMod;
        int64_t d = std::uniform_int_distribution<int64_t>(1, 7)(*rng);
        if (Pick(rng, 2) == 0) d = -d;
        auto call = rex_.MakeCall(
            op, {GenNumeric(rng, depth - 1), rex_.MakeIntLiteral(d)});
        return call.ok() ? call.value() : NumLeaf(rng);
      }
      case 3: {  // unary minus
        auto call = rex_.MakeCall(OpKind::kUnaryMinus,
                                  {GenNumeric(rng, depth - 1)});
        return call.ok() ? call.value() : NumLeaf(rng);
      }
      case 4:  // single-step cast (fused when the operand is a leaf)
        return rex_.MakeCast(Pick(rng, 2) == 0 ? int_null_ : dbl_null_,
                             GenNumeric(rng, depth - 1));
      case 5: {  // ABS — deliberately outside the fused set (fallback path)
        auto call = rex_.MakeCall(OpKind::kAbs, {GenNumeric(rng, depth - 1)});
        return call.ok() ? call.value() : NumLeaf(rng);
      }
      default:
        return NumLeaf(rng);
    }
  }

  RexNodePtr StrLeaf(std::mt19937* rng) {
    if (Pick(rng, 2) == 0) return rex_.MakeInputRef(row_type_, 4);
    static const char* kLits[] = {"", "a", "s1", "abc"};
    return rex_.MakeStringLiteral(kLits[Pick(rng, 4)]);
  }

  RexNodePtr GenString(std::mt19937* rng, int depth) {
    if (depth <= 0) return StrLeaf(rng);
    switch (Pick(rng, 4)) {
      case 0:  // numeric -> VARCHAR cast (fused single-step over leaves)
        return rex_.MakeCast(str_null_, GenNumeric(rng, depth - 1));
      case 1: {  // UPPER — fallback path
        auto call = rex_.MakeCall(OpKind::kUpper, {GenString(rng, depth - 1)});
        return call.ok() ? call.value() : StrLeaf(rng);
      }
      default:
        return StrLeaf(rng);
    }
  }

  RexNodePtr GenBool(std::mt19937* rng, int depth) {
    if (depth <= 0) {
      return Pick(rng, 2) == 0 ? rex_.MakeInputRef(row_type_, 5)
                               : rex_.MakeBoolLiteral(Pick(rng, 2) == 0);
    }
    static const OpKind kCmps[] = {
        OpKind::kEquals,      OpKind::kNotEquals,
        OpKind::kLessThan,    OpKind::kLessThanOrEqual,
        OpKind::kGreaterThan, OpKind::kGreaterThanOrEqual};
    switch (Pick(rng, 8)) {
      case 0:
      case 1: {  // numeric comparison
        auto call = rex_.MakeCall(kCmps[Pick(rng, 6)],
                                  {GenNumeric(rng, depth - 1),
                                   GenNumeric(rng, depth - 1)});
        if (call.ok()) return call.value();
        break;
      }
      case 2: {  // string comparison
        auto call = rex_.MakeCall(kCmps[Pick(rng, 6)],
                                  {GenString(rng, depth - 1),
                                   GenString(rng, depth - 1)});
        if (call.ok()) return call.value();
        break;
      }
      case 3: {  // AND / OR over two or three operands
        std::vector<RexNodePtr> ops;
        int arity = 2 + Pick(rng, 2);
        for (int i = 0; i < arity; ++i) ops.push_back(GenBool(rng, depth - 1));
        return Pick(rng, 2) == 0 ? rex_.MakeAnd(std::move(ops))
                                 : rex_.MakeOr(std::move(ops));
      }
      case 4: {  // NOT
        auto call = rex_.MakeCall(OpKind::kNot, {GenBool(rng, depth - 1)});
        if (call.ok()) return call.value();
        break;
      }
      case 5: {  // IS [NOT] NULL over any column
        auto call = rex_.MakeCall(
            Pick(rng, 2) == 0 ? OpKind::kIsNull : OpKind::kIsNotNull,
            {rex_.MakeInputRef(row_type_, Pick(rng, 6))});
        if (call.ok()) return call.value();
        break;
      }
      case 6: {  // IS TRUE / IS FALSE
        auto call = rex_.MakeCall(
            Pick(rng, 2) == 0 ? OpKind::kIsTrue : OpKind::kIsFalse,
            {GenBool(rng, depth - 1)});
        if (call.ok()) return call.value();
        break;
      }
      default:
        break;
    }
    return rex_.MakeInputRef(row_type_, 5);
  }

  RexNodePtr GenAny(std::mt19937* rng, int depth) {
    switch (Pick(rng, 3)) {
      case 0:
        return GenNumeric(rng, depth);
      case 1:
        return GenBool(rng, depth);
      default:
        return GenString(rng, depth);
    }
  }

  // ------------------------- differential checks ---------------------------

  /// The selection shapes each expression is exercised under. nullptr (no
  /// selection) is represented by an empty optional.
  std::vector<std::optional<SelectionVector>> SelectionShapes(size_t n) {
    std::vector<std::optional<SelectionVector>> shapes;
    shapes.emplace_back(std::nullopt);          // absent: all rows
    shapes.emplace_back(SelectionVector{});     // empty
    if (n > 0) {
      shapes.emplace_back(
          SelectionVector{static_cast<uint32_t>(n / 2)});  // singleton
      SelectionVector dense;
      SelectionVector sparse;
      for (uint32_t i = 0; i < n; ++i) {
        if (i % 7 != 0) dense.push_back(i);
        if (i % 13 == 0) sparse.push_back(i);
      }
      shapes.emplace_back(std::move(dense));
      shapes.emplace_back(std::move(sparse));
    }
    return shapes;
  }

  /// EvalBatchSel vs per-row Eval over exactly the selected rows.
  void CheckEval(const RexNodePtr& expr, const RowBatch& batch,
                 const SelectionVector* sel, const std::string& label) {
    std::vector<Value> got;
    Status status = RexInterpreter::EvalBatchSel(expr, batch, sel, &got);
    ASSERT_TRUE(status.ok()) << label << ": " << status.ToString();
    const size_t n = sel != nullptr ? sel->size() : batch.size();
    ASSERT_EQ(got.size(), n) << label;
    for (size_t k = 0; k < n; ++k) {
      const Row& row = batch[sel != nullptr ? (*sel)[k] : k];
      auto want = RexInterpreter::Eval(expr, row);
      ASSERT_TRUE(want.ok()) << label << ": " << want.status().ToString();
      ASSERT_EQ(got[k].ToString(), want.value().ToString())
          << label << " row " << k << " expr " << expr->ToString();
    }
  }

  /// NarrowSelection vs per-row EvalPredicate over the same candidates.
  void CheckNarrow(const RexNodePtr& pred, const RowBatch& batch,
                   const SelectionVector& candidates,
                   const std::string& label) {
    SelectionVector got = candidates;
    Status status = RexInterpreter::NarrowSelection(pred, batch, &got);
    ASSERT_TRUE(status.ok()) << label << ": " << status.ToString();
    SelectionVector want;
    for (uint32_t idx : candidates) {
      auto pass = RexInterpreter::EvalPredicate(pred, batch[idx]);
      ASSERT_TRUE(pass.ok()) << label << ": " << pass.status().ToString();
      if (pass.value()) want.push_back(idx);
    }
    ASSERT_EQ(got, want) << label << " pred " << pred->ToString();
  }

  /// Decomposes `batch` into a typed ColumnBatch (the columnar engine's
  /// native input) using the fixture row type.
  ColumnBatch ToColumns(const RowBatch& batch) {
    auto cols = RowsToColumns(batch, *row_type_);
    EXPECT_TRUE(cols.ok()) << cols.status().ToString();
    return std::move(cols.value());
  }

  /// RexColumnar::AppendEvalColumn vs per-row Eval over the active rows.
  /// Every expression runs under both kernel dispatch modes: the scalar
  /// result is diffed against the per-row oracle and the SIMD result must
  /// match the scalar one cell-for-cell (on a scalar-only build both runs
  /// take the reference path).
  void CheckColumnarEval(const RexNodePtr& expr, const ColumnBatch& base,
                         const RowBatch& rows, const SelectionVector* sel,
                         const std::string& label) {
    ColumnBatch in = base;  // shallow: shares the typed column storage
    if (sel != nullptr) {
      in.sel = *sel;
      in.has_sel = true;
    }
    ColumnBatch out_scalar, out_simd;
    for (bool enable_simd : {false, true}) {
      simd::ScopedDispatch dispatch(enable_simd);
      ColumnBatch& out = enable_simd ? out_simd : out_scalar;
      out.arena = std::make_shared<Arena>();
      out.ShareStorage(in);
      out.num_rows = in.ActiveCount();
      Status status = RexColumnar::AppendEvalColumn(expr, in, &out);
      ASSERT_TRUE(status.ok()) << label << ": " << status.ToString();
      ASSERT_EQ(out.cols.size(), 1u) << label;
    }
    // Third engine: the tree-fusing bytecode interpreter (which falls back
    // to the per-node path for unfusible trees — the differential holds
    // either way), again under both dispatch modes.
    ColumnBatch fused_scalar, fused_simd;
    for (bool enable_simd : {false, true}) {
      simd::ScopedDispatch dispatch(enable_simd);
      ColumnBatch& out = enable_simd ? fused_simd : fused_scalar;
      out.arena = std::make_shared<Arena>();
      out.ShareStorage(in);
      out.num_rows = in.ActiveCount();
      FusedExpr fused(expr);
      Status status = fused.AppendEvalColumn(in, &out);
      ASSERT_TRUE(status.ok()) << label << ": " << status.ToString();
      ASSERT_EQ(out.cols.size(), 1u) << label;
    }
    const size_t n = in.ActiveCount();
    for (size_t k = 0; k < n; ++k) {
      const Row& row = rows[in.ActiveIndex(k)];
      auto want = RexInterpreter::Eval(expr, row);
      ASSERT_TRUE(want.ok()) << label << ": " << want.status().ToString();
      ASSERT_EQ(out_scalar.cols[0].GetValue(k).ToString(),
                want.value().ToString())
          << label << " row " << k << " expr " << expr->ToString();
      ASSERT_EQ(out_simd.cols[0].GetValue(k).ToString(),
                out_scalar.cols[0].GetValue(k).ToString())
          << label << " simd-vs-scalar row " << k << " expr "
          << expr->ToString();
      ASSERT_EQ(fused_scalar.cols[0].GetValue(k).ToString(),
                out_scalar.cols[0].GetValue(k).ToString())
          << label << " fused-vs-per-node row " << k << " expr "
          << expr->ToString();
      ASSERT_EQ(fused_simd.cols[0].GetValue(k).ToString(),
                out_scalar.cols[0].GetValue(k).ToString())
          << label << " fused-simd-vs-per-node row " << k << " expr "
          << expr->ToString();
    }
  }

  /// RexColumnar::NarrowSelection vs per-row EvalPredicate over the same
  /// candidates, under both kernel dispatch modes (which must agree).
  void CheckColumnarNarrow(const RexNodePtr& pred, const ColumnBatch& base,
                           const RowBatch& rows,
                           const SelectionVector& candidates,
                           const std::string& label) {
    SelectionVector got_scalar, got_simd;
    for (bool enable_simd : {false, true}) {
      simd::ScopedDispatch dispatch(enable_simd);
      SelectionVector& got = enable_simd ? got_simd : got_scalar;
      got = candidates;
      ArenaPtr scratch = std::make_shared<Arena>();
      Status status =
          RexColumnar::NarrowSelection(pred, base, scratch, &got);
      ASSERT_TRUE(status.ok()) << label << ": " << status.ToString();
    }
    // Fused leg of the differential (falls back per the whole-tree rule).
    SelectionVector fused_scalar, fused_simd;
    for (bool enable_simd : {false, true}) {
      simd::ScopedDispatch dispatch(enable_simd);
      SelectionVector& got = enable_simd ? fused_simd : fused_scalar;
      got = candidates;
      ArenaPtr scratch = std::make_shared<Arena>();
      FusedExpr fused(pred);
      Status status = fused.NarrowSelection(base, scratch, &got);
      ASSERT_TRUE(status.ok()) << label << ": " << status.ToString();
    }
    SelectionVector want;
    for (uint32_t idx : candidates) {
      auto pass = RexInterpreter::EvalPredicate(pred, rows[idx]);
      ASSERT_TRUE(pass.ok()) << label << ": " << pass.status().ToString();
      if (pass.value()) want.push_back(idx);
    }
    ASSERT_EQ(got_scalar, want) << label << " pred " << pred->ToString();
    ASSERT_EQ(got_simd, want)
        << label << " simd-vs-scalar pred " << pred->ToString();
    ASSERT_EQ(fused_scalar, want)
        << label << " fused pred " << pred->ToString();
    ASSERT_EQ(fused_simd, want)
        << label << " fused-simd pred " << pred->ToString();
  }

  TypeFactory tf_;
  RexBuilder rex_;
  RelDataTypePtr int_t_, int_null_, dbl_null_, str_null_, bool_null_;
  RelDataTypePtr row_type_;
};

TEST_F(RexKernelFuzzTest, EvalBatchMatchesPerRowOracle) {
  std::mt19937 rng(20260729);
  for (size_t n : {size_t{1}, size_t{1023}, size_t{1024}}) {
    RowBatch batch = MakeBatch(n, &rng);
    auto shapes = SelectionShapes(n);
    for (int iter = 0; iter < 60 * FuzzScale(); ++iter) {
      RexNodePtr expr = GenAny(&rng, 3);
      for (size_t s = 0; s < shapes.size(); ++s) {
        const SelectionVector* sel =
            shapes[s].has_value() ? &*shapes[s] : nullptr;
        CheckEval(expr, batch, sel,
                  "n=" + std::to_string(n) + " iter=" + std::to_string(iter) +
                      " sel=" + std::to_string(s));
      }
    }
  }
}

TEST_F(RexKernelFuzzTest, NarrowSelectionMatchesPerRowOracle) {
  std::mt19937 rng(987654321);
  for (size_t n : {size_t{1}, size_t{1023}, size_t{1024}}) {
    RowBatch batch = MakeBatch(n, &rng);
    auto shapes = SelectionShapes(n);
    for (int iter = 0; iter < 60 * FuzzScale(); ++iter) {
      RexNodePtr pred = GenBool(&rng, 3);
      for (size_t s = 0; s < shapes.size(); ++s) {
        SelectionVector candidates;
        if (shapes[s].has_value()) {
          candidates = *shapes[s];
        } else {
          for (uint32_t i = 0; i < n; ++i) candidates.push_back(i);
        }
        CheckNarrow(pred, batch, candidates,
                    "n=" + std::to_string(n) + " iter=" +
                        std::to_string(iter) + " sel=" + std::to_string(s));
      }
    }
  }
}

TEST_F(RexKernelFuzzTest, ColumnarEvalMatchesPerRowOracle) {
  std::mt19937 rng(20260807);
  // 1025 straddles the fused interpreter's block size (kFuseBlockRows =
  // 1024): a full block plus a 1-row tail.
  for (size_t n : {size_t{1}, size_t{1023}, size_t{1024}, size_t{1025}}) {
    RowBatch batch = MakeBatch(n, &rng);
    ColumnBatch cols = ToColumns(batch);
    auto shapes = SelectionShapes(n);
    for (int iter = 0; iter < 60 * FuzzScale(); ++iter) {
      RexNodePtr expr = GenAny(&rng, 3);
      for (size_t s = 0; s < shapes.size(); ++s) {
        const SelectionVector* sel =
            shapes[s].has_value() ? &*shapes[s] : nullptr;
        CheckColumnarEval(expr, cols, batch, sel,
                          "n=" + std::to_string(n) + " iter=" +
                              std::to_string(iter) + " sel=" +
                              std::to_string(s));
      }
    }
  }
}

TEST_F(RexKernelFuzzTest, ColumnarNarrowSelectionMatchesPerRowOracle) {
  std::mt19937 rng(135792468);
  for (size_t n : {size_t{1}, size_t{1023}, size_t{1024}, size_t{1025}}) {
    RowBatch batch = MakeBatch(n, &rng);
    ColumnBatch cols = ToColumns(batch);
    auto shapes = SelectionShapes(n);
    for (int iter = 0; iter < 60 * FuzzScale(); ++iter) {
      RexNodePtr pred = GenBool(&rng, 3);
      for (size_t s = 0; s < shapes.size(); ++s) {
        SelectionVector candidates;
        if (shapes[s].has_value()) {
          candidates = *shapes[s];
        } else {
          for (uint32_t i = 0; i < n; ++i) candidates.push_back(i);
        }
        CheckColumnarNarrow(pred, cols, batch, candidates,
                            "n=" + std::to_string(n) + " iter=" +
                                std::to_string(iter) + " sel=" +
                                std::to_string(s));
      }
    }
  }
}

// Directed tail/alignment sweep for the SIMD dispatch: batch sizes chosen to
// straddle every vector-block boundary (4-lane groups, 8-entry refill bytes,
// 32-byte mask blocks) crossed with null densities 0% (columns carry no
// bytemap at all), 20%, and 100% (all-null bytemaps). Each expression runs
// under both dispatch modes via the Check helpers.
TEST_F(RexKernelFuzzTest, SimdTailAndAlignmentShapes) {
  std::mt19937 rng(424242);
  const size_t sizes[] = {1, 7, 15, 16, 17, 1023, 1024, 1025};
  for (size_t n : sizes) {
    for (int null_pct : {0, 20, 100}) {
      RowBatch batch = MakeBatch(n, &rng, null_pct);
      ColumnBatch cols = ToColumns(batch);
      auto shapes = SelectionShapes(n);
      const int iters = (n >= 1023 ? 6 : 12) * FuzzScale();
      for (int iter = 0; iter < iters; ++iter) {
        RexNodePtr expr = GenAny(&rng, 3);
        RexNodePtr pred = GenBool(&rng, 3);
        for (size_t s = 0; s < shapes.size(); ++s) {
          const std::string label = "n=" + std::to_string(n) + " nulls=" +
                                    std::to_string(null_pct) + " iter=" +
                                    std::to_string(iter) + " sel=" +
                                    std::to_string(s);
          const SelectionVector* sel =
              shapes[s].has_value() ? &*shapes[s] : nullptr;
          CheckColumnarEval(expr, cols, batch, sel, label);
          SelectionVector candidates;
          if (shapes[s].has_value()) {
            candidates = *shapes[s];
          } else {
            for (uint32_t i = 0; i < n; ++i) candidates.push_back(i);
          }
          CheckColumnarNarrow(pred, cols, batch, candidates, label);
        }
      }
    }
  }
}

// --------------------- ternary NULL semantics pack --------------------------
//
// Directed regressions for the three-valued-logic corners the fused kernels
// must preserve; the per-row interpreter is the oracle, and the expected
// truth-table entries are asserted explicitly so an oracle bug cannot hide
// a kernel bug.

class TernaryNullTest : public RexKernelFuzzTest {
 protected:
  /// Evaluates `expr` over a one-row batch through the fused kernel, checks
  /// it equals both the per-row oracle and the expected value.
  void ExpectTernary(const RexNodePtr& expr, const Row& row,
                     const Value& expected) {
    RowBatch batch = {row};
    std::vector<Value> out;
    Status status =
        RexInterpreter::EvalBatchSel(expr, batch, nullptr, &out);
    ASSERT_TRUE(status.ok()) << expr->ToString() << ": " << status.ToString();
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].ToString(), expected.ToString()) << expr->ToString();
    auto oracle = RexInterpreter::Eval(expr, row);
    ASSERT_TRUE(oracle.ok());
    EXPECT_EQ(out[0].ToString(), oracle.value().ToString())
        << expr->ToString();
  }

  RexNodePtr NullBool() { return rex_.MakeNullLiteral(bool_null_); }
  RexNodePtr NullInt() { return rex_.MakeNullLiteral(int_null_); }
  RexNodePtr True() { return rex_.MakeBoolLiteral(true); }
  RexNodePtr False() { return rex_.MakeBoolLiteral(false); }

  RexNodePtr Call(OpKind op, std::vector<RexNodePtr> ops) {
    auto call = rex_.MakeCall(op, std::move(ops));
    EXPECT_TRUE(call.ok());
    return call.value();
  }
};

TEST_F(TernaryNullTest, AndOrShortCircuitWithNull) {
  Row row = {Value::Int(0)};
  // AND: TRUE AND NULL -> NULL, FALSE AND NULL -> FALSE (short-circuit),
  // NULL AND NULL -> NULL.
  ExpectTernary(rex_.MakeAnd({True(), NullBool()}), row, Value::Null());
  ExpectTernary(rex_.MakeAnd({False(), NullBool()}), row, Value::Bool(false));
  ExpectTernary(rex_.MakeAnd({NullBool(), False()}), row, Value::Bool(false));
  ExpectTernary(rex_.MakeAnd({NullBool(), NullBool()}), row, Value::Null());
  // OR: TRUE OR NULL -> TRUE, FALSE OR NULL -> NULL.
  ExpectTernary(rex_.MakeOr({True(), NullBool()}), row, Value::Bool(true));
  ExpectTernary(rex_.MakeOr({NullBool(), True()}), row, Value::Bool(true));
  ExpectTernary(rex_.MakeOr({False(), NullBool()}), row, Value::Null());
  ExpectTernary(rex_.MakeOr({NullBool(), NullBool()}), row, Value::Null());
  // NOT NULL -> NULL.
  ExpectTernary(Call(OpKind::kNot, {NullBool()}), row, Value::Null());
}

TEST_F(TernaryNullTest, ComparisonsWithNullYieldNull) {
  // Nullable column against literal, both orders, via the fused kernel.
  Row null_row = {Value::Int(0), Value::Null()};
  Row live_row = {Value::Int(0), Value::Int(5)};
  RexNodePtr col = rex_.MakeInputRef(1, int_null_);
  for (OpKind op : {OpKind::kEquals, OpKind::kNotEquals, OpKind::kLessThan,
                    OpKind::kLessThanOrEqual, OpKind::kGreaterThan,
                    OpKind::kGreaterThanOrEqual}) {
    ExpectTernary(Call(op, {col, rex_.MakeIntLiteral(3)}), null_row,
                  Value::Null());
    ExpectTernary(Call(op, {rex_.MakeIntLiteral(3), col}), null_row,
                  Value::Null());
    ExpectTernary(Call(op, {col, NullInt()}), live_row, Value::Null());
  }
  // Arithmetic over NULL is NULL too (strict operators).
  ExpectTernary(Call(OpKind::kPlus, {col, rex_.MakeIntLiteral(1)}), null_row,
                Value::Null());
  ExpectTernary(Call(OpKind::kUnaryMinus, {col}), null_row, Value::Null());
}

TEST_F(TernaryNullTest, NullTestsSeeThroughNull) {
  Row null_row = {Value::Int(0), Value::Null()};
  Row live_row = {Value::Int(0), Value::Int(5)};
  RexNodePtr col = rex_.MakeInputRef(1, int_null_);
  ExpectTernary(Call(OpKind::kIsNull, {col}), null_row, Value::Bool(true));
  ExpectTernary(Call(OpKind::kIsNull, {col}), live_row, Value::Bool(false));
  ExpectTernary(Call(OpKind::kIsNotNull, {col}), null_row,
                Value::Bool(false));
  ExpectTernary(Call(OpKind::kIsNotNull, {col}), live_row, Value::Bool(true));
  // IS TRUE / IS FALSE treat NULL as neither.
  RexNodePtr flag = rex_.MakeInputRef(1, bool_null_);
  Row null_flag = {Value::Int(0), Value::Null()};
  ExpectTernary(Call(OpKind::kIsTrue, {flag}), null_flag, Value::Bool(false));
  ExpectTernary(Call(OpKind::kIsFalse, {flag}), null_flag,
                Value::Bool(false));
}

TEST_F(TernaryNullTest, CastOfNullIsNull) {
  Row null_row = {Value::Int(0), Value::Null()};
  RexNodePtr col = rex_.MakeInputRef(1, int_null_);
  ExpectTernary(rex_.MakeCast(int_null_, col), null_row, Value::Null());
  ExpectTernary(rex_.MakeCast(dbl_null_, col), null_row, Value::Null());
  ExpectTernary(rex_.MakeCast(str_null_, col), null_row, Value::Null());
  ExpectTernary(rex_.MakeCast(bool_null_, NullInt()), null_row, Value::Null());
}

TEST_F(TernaryNullTest, FilterTreatsUnknownAsNotPassing) {
  // Rows: a = NULL, 1, 5. Predicate a > 2 passes only the 5.
  RowBatch batch = {{Value::Int(0), Value::Null()},
                    {Value::Int(1), Value::Int(1)},
                    {Value::Int(2), Value::Int(5)}};
  RexNodePtr pred = Call(OpKind::kGreaterThan,
                         {rex_.MakeInputRef(1, int_null_),
                          rex_.MakeIntLiteral(2)});
  SelectionVector sel = {0, 1, 2};
  ASSERT_TRUE(RexInterpreter::NarrowSelection(pred, batch, &sel).ok());
  EXPECT_EQ(sel, SelectionVector({2}));
}

}  // namespace
}  // namespace calcite
