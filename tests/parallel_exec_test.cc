// Tests of the morsel-driven parallel execution subsystem
// (src/exec/parallel/): unit tests of the scheduler / morsel source /
// exchange primitives, thread-count sweeps asserting parallel plans produce
// the same multiset of rows as the serial engine (order-insensitive —
// workers race for morsels), a differential check that num_threads = 1 is
// byte-identical to the serial pipelines, error propagation
// (cancellation-on-error), and the ExecOptions validation clamp.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "adapters/enumerable/enumerable_rels.h"
#include "exec/parallel/exchange.h"
#include "exec/parallel/morsel.h"
#include "exec/parallel/task_scheduler.h"
#include "rel/core.h"
#include "rex/rex_builder.h"
#include "stream/stream.h"
#include "test_schema.h"
#include "tools/frameworks.h"

namespace calcite {
namespace {

const std::vector<size_t> kThreadCounts = {1, 2, 4, 8};
const std::vector<size_t> kSweepBatchSizes = {1, 1024};

// ------------------------------ primitives --------------------------------

TEST(TaskSchedulerTest, RunsEverySubmittedTask) {
  TaskScheduler scheduler(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    scheduler.Submit([&done] { done.fetch_add(1); });
  }
  scheduler.WaitIdle();
  EXPECT_EQ(done.load(), 100);
  // The pool is reusable after going idle.
  for (int i = 0; i < 10; ++i) {
    scheduler.Submit([&done] { done.fetch_add(1); });
  }
  scheduler.WaitIdle();
  EXPECT_EQ(done.load(), 110);
}

TEST(TaskSchedulerTest, DestructorCompletesQueuedTasks) {
  std::atomic<int> done{0};
  {
    TaskScheduler scheduler(2);
    for (int i = 0; i < 50; ++i) {
      scheduler.Submit([&done] { done.fetch_add(1); });
    }
  }
  EXPECT_EQ(done.load(), 50);
}

TEST(QueryCancelStateTest, FirstErrorWins) {
  QueryCancelState cancel;
  EXPECT_FALSE(cancel.cancelled());
  EXPECT_TRUE(cancel.status().ok());
  cancel.Cancel(Status::OK());  // benign cancellation keeps status OK
  EXPECT_TRUE(cancel.cancelled());
  cancel.Cancel(Status::RuntimeError("first"));
  cancel.Cancel(Status::RuntimeError("second"));
  EXPECT_EQ(cancel.status().message(), "first");
}

TEST(MorselSourceTest, ClaimsCoverRangeExactlyOnce) {
  MorselSource source(10000, 256);
  std::vector<bool> claimed(10000, false);
  while (auto m = source.Next()) {
    ASSERT_LT(m->begin, m->end);
    ASSERT_LE(m->end, 10000u);
    for (size_t i = m->begin; i < m->end; ++i) {
      ASSERT_FALSE(claimed[i]) << "row " << i << " claimed twice";
      claimed[i] = true;
    }
  }
  EXPECT_TRUE(std::all_of(claimed.begin(), claimed.end(),
                          [](bool b) { return b; }));
}

TEST(MorselSourceTest, ConcurrentClaimsAreDisjoint) {
  constexpr size_t kRows = 100000;
  MorselSource source(kRows, 64);
  std::vector<std::vector<Morsel>> claims(4);
  {
    TaskScheduler scheduler(4);
    for (size_t t = 0; t < 4; ++t) {
      std::vector<Morsel>* mine = &claims[t];
      scheduler.Submit([&source, mine] {
        while (auto m = source.Next()) mine->push_back(*m);
      });
    }
    scheduler.WaitIdle();
  }
  std::vector<bool> claimed(kRows, false);
  for (const auto& worker : claims) {
    for (const Morsel& m : worker) {
      for (size_t i = m.begin; i < m.end; ++i) {
        ASSERT_FALSE(claimed[i]);
        claimed[i] = true;
      }
    }
  }
  EXPECT_TRUE(std::all_of(claimed.begin(), claimed.end(),
                          [](bool b) { return b; }));
}

TEST(ExchangeQueueTest, DeliversEveryBatchThenTerminates) {
  constexpr size_t kProducers = 3;
  constexpr size_t kBatchesEach = 40;
  ExchangeQueue queue(/*capacity=*/4, kProducers);
  TaskScheduler scheduler(kProducers);
  for (size_t p = 0; p < kProducers; ++p) {
    scheduler.Submit([&queue] {
      for (size_t b = 0; b < kBatchesEach; ++b) {
        RowBatch batch;
        batch.push_back({Value::Int(static_cast<int64_t>(b))});
        ASSERT_TRUE(queue.Push(std::move(batch)));
      }
      queue.ProducerDone();
    });
  }
  size_t rows = 0;
  while (auto batch = queue.Pop()) rows += batch->size();
  EXPECT_EQ(rows, kProducers * kBatchesEach);
}

TEST(ExchangeQueueTest, CancelUnblocksFullQueueProducers) {
  ExchangeQueue queue(/*capacity=*/1, /*num_producers=*/1);
  std::atomic<bool> producer_exited{false};
  std::thread producer([&] {
    RowBatch one_row = {{Value::Int(1)}};
    while (queue.Push(one_row)) {
    }
    producer_exited = true;
  });
  // Let the producer fill the queue and park in Push, then cancel.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(producer_exited.load());
  queue.Cancel();
  producer.join();
  EXPECT_TRUE(producer_exited.load());
  EXPECT_FALSE(queue.Pop().has_value());
}

// ------------------------- ExecOptions validation -------------------------

TEST(ExecOptionsTest, ZeroValuesClampToOne) {
  ExecOptions opts;
  opts.batch_size = 0;
  opts.num_threads = 0;
  ExecOptions normalized = opts.Normalized();
  EXPECT_EQ(normalized.batch_size, 1u);
  EXPECT_EQ(normalized.num_threads, 1u);
  // Valid settings pass through untouched.
  opts.batch_size = 77;
  opts.num_threads = 3;
  normalized = opts.Normalized();
  EXPECT_EQ(normalized.batch_size, 77u);
  EXPECT_EQ(normalized.num_threads, 3u);
}

TEST(ExecOptionsTest, ZeroedConnectionConfigStillExecutes) {
  Connection::Config config;
  config.schema = testing::MakeTestSchema();
  config.exec_options.batch_size = 0;   // would degenerate pullers unclamped
  config.exec_options.num_threads = 0;  // would have no workers unclamped
  Connection conn(std::move(config));
  auto result = conn.Query("SELECT COUNT(*) AS c FROM sales");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().rows.size(), 1u);
  EXPECT_EQ(RowToString(result.value().rows[0]), "[6]");
}

// ------------------------ operator-level thread sweep ---------------------

/// Same NULL-heavy four-column data set as the batch parity suite.
RelDataTypePtr SweepRowType(const TypeFactory& tf) {
  auto int_t = tf.CreateSqlType(SqlTypeName::kInteger);
  auto int_null = tf.CreateSqlType(SqlTypeName::kInteger, -1, true);
  auto str_null = tf.CreateSqlType(SqlTypeName::kVarchar, 20, true);
  auto dbl_null = tf.CreateSqlType(SqlTypeName::kDouble, -1, true);
  return tf.CreateStructType({"id", "k", "s", "d"},
                             {int_t, int_null, str_null, dbl_null});
}

std::vector<Row> SweepRows(size_t n) {
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back(
        {Value::Int(static_cast<int64_t>(i)),
         i % 3 == 0 ? Value::Null() : Value::Int(static_cast<int64_t>(i % 7)),
         i % 5 == 0 ? Value::Null()
                    : Value::String("s" + std::to_string(i % 11)),
         // Multiples of 0.25 stay binary-exact, so partial sums merged in
         // any order finish bit-identical to the serial left fold.
         i % 4 == 0 ? Value::Null()
                    : Value::Double(static_cast<double>(i % 13) * 0.25)});
  }
  return rows;
}

Result<std::vector<Row>> Drain(const RelNodePtr& node, size_t num_threads,
                               size_t batch_size) {
  ExecOptions opts;
  opts.batch_size = batch_size;
  opts.num_threads = num_threads;
  auto puller = node->ExecuteBatched(opts);
  if (!puller.ok()) return puller.status();
  return DrainBatches(puller.value());
}

std::vector<std::string> SortedStrings(const std::vector<Row>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Row& row : rows) out.push_back(RowToString(row));
  std::sort(out.begin(), out.end());
  return out;
}

/// Runs `node` serially and at every (threads x batch) sweep point,
/// asserting the same multiset of output rows each time.
void ExpectThreadSweepParity(const RelNodePtr& node, const std::string& label) {
  auto serial = Drain(node, 1, 1024);
  ASSERT_TRUE(serial.ok()) << label << ": " << serial.status().ToString();
  std::vector<std::string> expected = SortedStrings(serial.value());
  for (size_t threads : kThreadCounts) {
    for (size_t bs : kSweepBatchSizes) {
      auto got = Drain(node, threads, bs);
      ASSERT_TRUE(got.ok()) << label << " threads=" << threads << " bs=" << bs
                            << ": " << got.status().ToString();
      EXPECT_EQ(SortedStrings(got.value()), expected)
          << label << " threads=" << threads << " bs=" << bs;
    }
  }
}

class ParallelSweepTest : public ::testing::Test {
 protected:
  RelNodePtr ScanLeaf(size_t n) {
    auto table = std::make_shared<MemTable>(SweepRowType(tf_), SweepRows(n));
    auto logical = LogicalTableScan::Create(table, {"t"},
                                            Convention::Enumerable(), tf_);
    return EnumerableTableScan::Create(
        *static_cast<const TableScan*>(logical.get()));
  }

  RexNodePtr Field(const RelDataTypePtr& row_type, int i) {
    return rex_.MakeInputRef(row_type, i);
  }

  /// scan -> filter(id < limit AND k IS NOT NULL) -> project(id, id + 7).
  RelNodePtr FilterProjectPipeline(size_t n, int64_t limit) {
    RelNodePtr leaf = ScanLeaf(n);
    const RelDataTypePtr& rt = leaf->row_type();
    auto cmp = rex_.MakeCall(OpKind::kLessThan,
                             {Field(rt, 0), rex_.MakeIntLiteral(limit)});
    EXPECT_TRUE(cmp.ok());
    auto not_null = rex_.MakeCall(OpKind::kIsNotNull, {Field(rt, 1)});
    EXPECT_TRUE(not_null.ok());
    RelNodePtr filtered = EnumerableFilter::Create(
        leaf, rex_.MakeAnd({cmp.value(), not_null.value()}));
    auto sum = rex_.MakeCall(OpKind::kPlus,
                             {Field(rt, 0), rex_.MakeIntLiteral(7)});
    EXPECT_TRUE(sum.ok());
    std::vector<RexNodePtr> exprs = {Field(rt, 0), sum.value()};
    auto row_type = DeriveProjectRowType(exprs, {"id", "id7"}, tf_);
    return EnumerableProject::Create(filtered, exprs, row_type);
  }

  TypeFactory tf_;
  RexBuilder rex_;
};

TEST_F(ParallelSweepTest, MorselScan) {
  for (size_t n : {size_t{0}, size_t{1}, size_t{1025}, size_t{20000}}) {
    ExpectThreadSweepParity(ScanLeaf(n), "scan n=" + std::to_string(n));
  }
}

TEST_F(ParallelSweepTest, ScanFilterProjectPipeline) {
  for (size_t n : {size_t{0}, size_t{1}, size_t{1025}, size_t{20000}}) {
    ExpectThreadSweepParity(FilterProjectPipeline(n, 15000),
                            "pipeline n=" + std::to_string(n));
  }
  // A filter that eliminates everything still terminates cleanly.
  ExpectThreadSweepParity(FilterProjectPipeline(5000, -1), "pipeline empty");
}

TEST_F(ParallelSweepTest, PartitionedAggregate) {
  for (size_t n : {size_t{0}, size_t{1}, size_t{1025}, size_t{20000}}) {
    RelNodePtr leaf = ScanLeaf(n);
    const RelDataTypePtr& rt = leaf->row_type();
    std::vector<AggregateCall> calls;
    {
      AggregateCall c;
      c.kind = AggKind::kCountStar;
      c.name = "cnt";
      calls.push_back(c);
      c.kind = AggKind::kCount;
      c.args = {1};
      c.name = "cnt_k";
      calls.push_back(c);
      c.kind = AggKind::kSum;
      c.args = {3};
      c.name = "sum_d";
      calls.push_back(c);
      c.kind = AggKind::kAvg;
      c.args = {0};
      c.name = "avg_id";
      calls.push_back(c);
      c.kind = AggKind::kMin;
      c.args = {2};
      c.name = "min_s";
      calls.push_back(c);
      c.kind = AggKind::kMax;
      c.args = {3};
      c.name = "max_d";
      calls.push_back(c);
      c.kind = AggKind::kCount;
      c.args = {1};
      c.distinct = true;
      c.name = "cntd_k";
      calls.push_back(c);
    }
    std::string label = "agg n=" + std::to_string(n);
    {
      auto row_type = DeriveAggregateRowType(rt, {}, calls, tf_);
      ExpectThreadSweepParity(
          EnumerableAggregate::Create(leaf, {}, calls, row_type),
          label + " global");
    }
    {
      auto row_type = DeriveAggregateRowType(rt, {1}, calls, tf_);
      ExpectThreadSweepParity(
          EnumerableAggregate::Create(leaf, {1}, calls, row_type),
          label + " by k");
    }
    {
      auto row_type = DeriveAggregateRowType(rt, {1, 2}, calls, tf_);
      ExpectThreadSweepParity(
          EnumerableAggregate::Create(leaf, {1, 2}, calls, row_type),
          label + " by k,s");
    }
  }
}

TEST_F(ParallelSweepTest, PartitionedHashJoinAllTypes) {
  const std::vector<JoinType> join_types = {
      JoinType::kInner, JoinType::kLeft, JoinType::kRight,
      JoinType::kFull,  JoinType::kSemi, JoinType::kAnti};
  for (size_t n : {size_t{0}, size_t{1}, size_t{4000}}) {
    for (size_t m : {size_t{0}, size_t{300}}) {
      RelNodePtr left = ScanLeaf(n);
      RelNodePtr right = ScanLeaf(m);
      const RelDataTypePtr& lt = left->row_type();
      const RelDataTypePtr& rt = right->row_type();
      size_t left_width = lt->fields().size();
      // Equi-key on the NULL-heavy k columns plus a non-equi residual.
      auto equi = rex_.MakeEquals(
          Field(lt, 1),
          rex_.MakeInputRef(static_cast<int>(left_width) + 1,
                            rt->fields()[1].type));
      auto bound = rex_.MakeCall(
          OpKind::kPlus,
          {rex_.MakeInputRef(static_cast<int>(left_width) + 0,
                             rt->fields()[0].type),
           rex_.MakeIntLiteral(3000)});
      ASSERT_TRUE(bound.ok());
      auto residual =
          rex_.MakeCall(OpKind::kLessThan, {Field(lt, 0), bound.value()});
      ASSERT_TRUE(residual.ok());
      RexNodePtr condition = rex_.MakeAnd({equi, residual.value()});
      for (JoinType jt : join_types) {
        auto row_type = DeriveJoinRowType(lt, rt, jt, tf_);
        auto join =
            EnumerableHashJoin::Create(left, right, condition, jt, row_type);
        ExpectThreadSweepParity(join, std::string("join ") + JoinTypeName(jt) +
                                          " n=" + std::to_string(n) +
                                          " m=" + std::to_string(m));
      }
    }
  }
}

// A probe side that is itself a filtered pipeline exercises the in-worker
// stage chain of the partitioned join.
TEST_F(ParallelSweepTest, JoinOverFilteredProbePipeline) {
  RelNodePtr left = FilterProjectPipeline(8000, 6000);
  RelNodePtr right = ScanLeaf(200);
  const RelDataTypePtr& lt = left->row_type();
  const RelDataTypePtr& rt = right->row_type();
  auto equi = rex_.MakeEquals(
      Field(lt, 0), rex_.MakeInputRef(static_cast<int>(lt->fields().size()),
                                      rt->fields()[0].type));
  auto row_type = DeriveJoinRowType(lt, rt, JoinType::kInner, tf_);
  auto join = EnumerableHashJoin::Create(left, right, equi, JoinType::kInner,
                                         row_type);
  ExpectThreadSweepParity(join, "join over pipeline");
}

// Stream tables are time-ordered by contract, so their scans must never go
// morsel-parallel: whatever the thread count, events come back in exact
// arrival order.
TEST_F(ParallelSweepTest, StreamScansStaySerialAndOrdered) {
  auto int_t = tf_.CreateSqlType(SqlTypeName::kInteger);
  auto row_type = tf_.CreateStructType({"rowtime", "amount"}, {int_t, int_t});
  auto stream = std::make_shared<stream::StreamTable>(row_type, 0);
  for (int i = 0; i < 20000; ++i) {
    ASSERT_TRUE(stream->Append({Value::Int(i), Value::Int(i % 50)}).ok());
  }
  auto logical = LogicalTableScan::Create(stream, {"events"},
                                          Convention::Enumerable(), tf_);
  auto scan = EnumerableTableScan::Create(
      *static_cast<const TableScan*>(logical.get()));
  for (size_t threads : {size_t{4}, size_t{8}}) {
    auto got = Drain(scan, threads, 1024);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got.value().size(), 20000u);
    for (size_t i = 0; i < got.value().size(); ++i) {
      ASSERT_EQ(got.value()[i][0].AsInt(), static_cast<int64_t>(i))
          << "rowtime out of arrival order at " << i
          << " with threads=" << threads;
    }
  }
}

// ----------------------- serial-path differential -------------------------

// num_threads = 1 must take the exact serial code path: identical rows in
// identical order to the default options and to the materializing Execute().
TEST_F(ParallelSweepTest, SingleThreadIsByteIdenticalToSerial) {
  RelNodePtr node = FilterProjectPipeline(5000, 4000);
  auto defaults = Drain(node, 1, 1024);
  ASSERT_TRUE(defaults.ok());
  ExecOptions explicit_one;
  explicit_one.batch_size = 1024;
  explicit_one.num_threads = 1;
  auto puller = node->ExecuteBatched(explicit_one);
  ASSERT_TRUE(puller.ok());
  auto one_thread = DrainBatches(puller.value());
  ASSERT_TRUE(one_thread.ok());
  ASSERT_EQ(one_thread.value().size(), defaults.value().size());
  for (size_t i = 0; i < one_thread.value().size(); ++i) {
    EXPECT_EQ(RowToString(one_thread.value()[i]),
              RowToString(defaults.value()[i]))
        << "row " << i;
  }
  auto materialized = node->Execute();
  ASSERT_TRUE(materialized.ok());
  ASSERT_EQ(materialized.value().size(), defaults.value().size());
  for (size_t i = 0; i < materialized.value().size(); ++i) {
    EXPECT_EQ(RowToString(materialized.value()[i]),
              RowToString(defaults.value()[i]))
        << "row " << i;
  }
}

// --------------------------- error propagation ----------------------------

class ParallelErrorTest : public ParallelSweepTest {
 protected:
  /// 100 / (id - 500): evaluates fine everywhere except id = 500, so only
  /// one morsel in the middle of the scan trips the error.
  RexNodePtr PoisonExpr(const RelDataTypePtr& rt) {
    auto shifted = rex_.MakeCall(OpKind::kMinus,
                                 {Field(rt, 0), rex_.MakeIntLiteral(500)});
    EXPECT_TRUE(shifted.ok());
    auto div = rex_.MakeCall(OpKind::kDivide,
                             {rex_.MakeIntLiteral(100), shifted.value()});
    EXPECT_TRUE(div.ok());
    return div.value();
  }
};

TEST_F(ParallelErrorTest, FailingMorselCancelsPipeline) {
  RelNodePtr leaf = ScanLeaf(20000);
  const RelDataTypePtr& rt = leaf->row_type();
  auto cond = rex_.MakeCall(OpKind::kGreaterThan,
                            {PoisonExpr(rt), rex_.MakeIntLiteral(0)});
  ASSERT_TRUE(cond.ok());
  RelNodePtr filter = EnumerableFilter::Create(leaf, cond.value());
  for (size_t threads : {size_t{2}, size_t{4}, size_t{8}}) {
    auto result = Drain(filter, threads, 1024);
    ASSERT_FALSE(result.ok()) << "threads=" << threads;
    EXPECT_EQ(result.status().code(), StatusCode::kRuntimeError);
    EXPECT_NE(result.status().message().find("division by zero"),
              std::string::npos)
        << result.status().ToString();
  }
}

TEST_F(ParallelErrorTest, FailingMorselCancelsPartitionedAggregate) {
  RelNodePtr leaf = ScanLeaf(20000);
  const RelDataTypePtr& rt = leaf->row_type();
  // SUM over the VARCHAR column errors as soon as a worker feeds it a
  // non-NULL string.
  AggregateCall c;
  c.kind = AggKind::kSum;
  c.args = {2};
  c.name = "bad";
  auto row_type = DeriveAggregateRowType(rt, {}, {c}, tf_);
  auto agg = EnumerableAggregate::Create(leaf, {}, {c}, row_type);
  auto result = Drain(agg, 4, 1024);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kRuntimeError);
}

TEST_F(ParallelErrorTest, FailingProbeStageCancelsPartitionedJoin) {
  // The poison filter sits in the probe-side pipeline, so the error
  // surfaces from inside a probe worker mid-join.
  RelNodePtr leaf = ScanLeaf(20000);
  const RelDataTypePtr& rt = leaf->row_type();
  auto cond = rex_.MakeCall(OpKind::kGreaterThan,
                            {PoisonExpr(rt), rex_.MakeIntLiteral(-1000)});
  ASSERT_TRUE(cond.ok());
  RelNodePtr left = EnumerableFilter::Create(leaf, cond.value());
  RelNodePtr right = ScanLeaf(100);
  auto equi = rex_.MakeEquals(
      Field(rt, 1), rex_.MakeInputRef(static_cast<int>(rt->fields().size()) + 1,
                                      rt->fields()[1].type));
  auto row_type = DeriveJoinRowType(rt, right->row_type(), JoinType::kInner,
                                    tf_);
  auto join = EnumerableHashJoin::Create(left, right, equi, JoinType::kInner,
                                         row_type);
  auto result = Drain(join, 4, 1024);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kRuntimeError);
  EXPECT_NE(result.status().message().find("division by zero"),
            std::string::npos);
}

// Abandoning a parallel stream mid-flight (LIMIT-style) must cancel and
// join the workers without deadlock or error.
TEST_F(ParallelSweepTest, AbandonedStreamShutsDownCleanly) {
  RelNodePtr node = FilterProjectPipeline(50000, 45000);
  ExecOptions opts;
  opts.batch_size = 64;
  opts.num_threads = 4;
  auto puller = node->ExecuteBatched(opts);
  ASSERT_TRUE(puller.ok());
  auto first = (puller.value())();
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().empty());
  // Dropping the puller here must tear the fragment down.
}

// ------------------------------ SQL level ---------------------------------

QueryResult MustQuery(Connection* conn, const std::string& sql) {
  auto result = conn->Query(sql);
  EXPECT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
  return result.ok() ? std::move(result).value() : QueryResult{};
}

TEST(ParallelSqlTest, QueriesMatchSerialAcrossThreadCounts) {
  const std::vector<std::string> unordered_queries = {
      "SELECT * FROM sales",
      "SELECT saleid, units FROM sales WHERE discount IS NOT NULL",
      "SELECT productId, COUNT(*) AS c, SUM(units) AS u FROM sales "
      "GROUP BY productId",
      "SELECT products.name, COUNT(*) AS c FROM sales "
      "JOIN products USING (productId) GROUP BY products.name",
      "SELECT COUNT(*) AS c, SUM(units) AS s FROM sales",
  };
  // ORDER BY over a unique key: results must match in exact order even
  // though the fragment below the sort ran in parallel.
  const std::vector<std::string> ordered_queries = {
      "SELECT saleid, units FROM sales WHERE units > 1 ORDER BY saleid",
      "SELECT deptno, COUNT(*) AS c FROM emps GROUP BY deptno ORDER BY deptno",
  };
  std::vector<std::vector<std::string>> unordered_base;
  std::vector<std::vector<std::string>> ordered_base;
  {
    Connection::Config config;
    config.schema = testing::MakeTestSchema();
    Connection conn(std::move(config));
    for (const auto& sql : unordered_queries) {
      unordered_base.push_back(SortedStrings(MustQuery(&conn, sql).rows));
    }
    for (const auto& sql : ordered_queries) {
      std::vector<std::string> rows;
      for (const Row& row : MustQuery(&conn, sql).rows) {
        rows.push_back(RowToString(row));
      }
      ordered_base.push_back(std::move(rows));
    }
  }
  for (size_t threads : {size_t{2}, size_t{4}, size_t{8}}) {
    Connection::Config config;
    config.schema = testing::MakeTestSchema();
    config.exec_options.num_threads = threads;
    Connection conn(std::move(config));
    for (size_t q = 0; q < unordered_queries.size(); ++q) {
      EXPECT_EQ(SortedStrings(MustQuery(&conn, unordered_queries[q]).rows),
                unordered_base[q])
          << unordered_queries[q] << " threads=" << threads;
    }
    for (size_t q = 0; q < ordered_queries.size(); ++q) {
      std::vector<std::string> rows;
      for (const Row& row : MustQuery(&conn, ordered_queries[q]).rows) {
        rows.push_back(RowToString(row));
      }
      EXPECT_EQ(rows, ordered_base[q])
          << ordered_queries[q] << " threads=" << threads;
    }
  }
}

TEST(ParallelSqlTest, RuntimeErrorSurfacesThroughConnection) {
  Connection::Config config;
  config.schema = testing::MakeTestSchema();
  config.exec_options.num_threads = 4;
  Connection conn(std::move(config));
  auto result = conn.Query("SELECT 100 / (saleid - 3) FROM sales");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kRuntimeError);
}

}  // namespace
}  // namespace calcite
