#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "linq/batch_enumerable.h"
#include "linq/enumerable.h"

namespace calcite {
namespace {

using linq::BatchEnumerable;
using linq::Enumerable;

std::vector<int> Ints(int n) {
  std::vector<int> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(i);
  return out;
}

int IntCmp(const int& a, const int& b) { return a < b ? -1 : (a > b ? 1 : 0); }

// ------------------------- BatchEnumerable units ---------------------------

TEST(BatchEnumerableTest, FromVectorRoundTripsAcrossBatchSizes) {
  for (size_t bs : {1u, 2u, 3u, 64u, 1024u, 4096u}) {
    auto e = BatchEnumerable<int>::FromVector(Ints(1025), bs);
    EXPECT_EQ(e.ToVector(), Ints(1025)) << "batch_size=" << bs;
    EXPECT_EQ(e.Count(), 1025u);
  }
}

TEST(BatchEnumerableTest, EmptyAndSingleton) {
  EXPECT_TRUE(BatchEnumerable<int>::Empty().ToVector().empty());
  EXPECT_FALSE(BatchEnumerable<int>::Empty().Any());
  EXPECT_EQ(BatchEnumerable<int>::Empty().First(), std::nullopt);
  auto one = BatchEnumerable<int>::FromVector({42}, 7);
  EXPECT_TRUE(one.Any());
  EXPECT_EQ(one.First(), 42);
}

TEST(BatchEnumerableTest, WhereCompactsBatchesInPlace) {
  auto e = BatchEnumerable<int>::FromVector(Ints(1000), 64)
               .Where([](const int& v) { return v % 3 == 0; });
  auto expected = Enumerable<int>::FromVector(Ints(1000))
                      .Where([](const int& v) { return v % 3 == 0; })
                      .ToVector();
  EXPECT_EQ(e.ToVector(), expected);
}

TEST(BatchEnumerableTest, WhereSkipsFullyEliminatedBatches) {
  // Only the last element survives; every earlier batch compacts to zero
  // rows and must not surface as a premature end-of-stream.
  auto e = BatchEnumerable<int>::FromVector(Ints(1000), 10)
               .Where([](const int& v) { return v == 999; });
  EXPECT_EQ(e.ToVector(), std::vector<int>({999}));
  EXPECT_TRUE(e.Any());
}

TEST(BatchEnumerableTest, SelectAndSelectBatch) {
  auto base = BatchEnumerable<int>::FromVector(Ints(100), 9);
  auto doubled =
      base.Select<int>([](const int& v) { return v * 2; }).ToVector();
  ASSERT_EQ(doubled.size(), 100u);
  EXPECT_EQ(doubled[99], 198);
  auto via_batch = base.SelectBatch<int>([](const std::vector<int>& batch) {
                         std::vector<int> out;
                         out.reserve(batch.size());
                         for (int v : batch) out.push_back(v * 2);
                         return out;
                       })
                       .ToVector();
  EXPECT_EQ(via_batch, doubled);
}

TEST(BatchEnumerableTest, OrderBySkipTakeAcrossBatchBoundaries) {
  std::vector<int> values;
  for (int i = 0; i < 500; ++i) values.push_back((i * 37) % 500);
  auto sorted = BatchEnumerable<int>::FromVector(values, 64)
                    .OrderBy(IntCmp)
                    .Skip(10)
                    .Take(100)
                    .ToVector();
  ASSERT_EQ(sorted.size(), 100u);
  EXPECT_EQ(sorted.front(), 10);
  EXPECT_EQ(sorted.back(), 109);
  // Skip spanning several whole batches plus a partial one.
  auto tail = BatchEnumerable<int>::FromVector(Ints(1000), 16).Skip(997);
  EXPECT_EQ(tail.ToVector(), std::vector<int>({997, 998, 999}));
  EXPECT_TRUE(
      BatchEnumerable<int>::FromVector(Ints(10), 4).Skip(10).ToVector()
          .empty());
  EXPECT_TRUE(
      BatchEnumerable<int>::FromVector(Ints(10), 4).Take(0).ToVector()
          .empty());
}

TEST(BatchEnumerableTest, ConcatDistinctGroupByJoin) {
  auto left = BatchEnumerable<int>::FromVector({1, 2, 3, 2, 1}, 2);
  auto right = BatchEnumerable<int>::FromVector({4, 5}, 2);
  EXPECT_EQ(left.Concat(right).ToVector(),
            std::vector<int>({1, 2, 3, 2, 1, 4, 5}));
  EXPECT_EQ(left.Distinct(IntCmp).ToVector(), std::vector<int>({1, 2, 3}));

  auto groups =
      BatchEnumerable<int>::FromVector(Ints(100), 7)
          .GroupBy<int, std::pair<int, size_t>>(
              [](const int& v) { return v % 3; },
              [](const int& k, const std::vector<int>& vs) {
                return std::make_pair(k, vs.size());
              })
          .ToVector();
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0], std::make_pair(0, size_t{34}));

  auto joined =
      BatchEnumerable<int>::FromVector({1, 2, 3}, 2)
          .Join<int, int, int>(
              BatchEnumerable<int>::FromVector({2, 3, 4}, 2),
              [](const int& v) { return v; }, [](const int& v) { return v; },
              [](const int& a, const int& b) { return a + b; })
          .ToVector();
  EXPECT_EQ(joined, std::vector<int>({4, 6}));
}

TEST(BatchEnumerableTest, AggregateAndAggregateBatches) {
  auto e = BatchEnumerable<int>::FromVector(Ints(101), 8);
  int sum = e.Aggregate<int>(0, [](int acc, const int& v) { return acc + v; });
  EXPECT_EQ(sum, 5050);
  int batch_sum = e.AggregateBatches<int>(
      0, [](int acc, const std::vector<int>& batch) {
        for (int v : batch) acc += v;
        return acc;
      });
  EXPECT_EQ(batch_sum, 5050);
}

TEST(BatchEnumerableTest, BlockingCombinatorsMaterializeLazily) {
  // The unreached side of a Concat must not be materialized: OrderBy (and
  // the other blocking combinators) sort on first pull, not when the
  // enumeration is created.
  auto touched = std::make_shared<int>(0);
  auto expensive = BatchEnumerable<int>::FromVector(Ints(100), 8)
                       .Select<int>([touched](const int& v) {
                         *touched += 1;
                         return v;
                       })
                       .OrderBy(IntCmp);
  auto pipeline =
      BatchEnumerable<int>::FromVector({1, 2, 3}, 2).Concat(expensive);
  EXPECT_EQ(pipeline.First(), 1);
  EXPECT_EQ(*touched, 0) << "OrderBy materialized without being pulled";
  EXPECT_EQ(pipeline.ToVector().size(), 103u);
  EXPECT_EQ(*touched, 100);
}

TEST(BatchEnumerableTest, BridgesToAndFromEnumerable) {
  auto scalar = Enumerable<int>::Range(0, 100, [](int64_t i) {
    return static_cast<int>(i * 3);
  });
  auto batched = BatchEnumerable<int>::FromEnumerable(scalar, 7);
  EXPECT_EQ(batched.ToVector(), scalar.ToVector());
  EXPECT_EQ(batched.ToEnumerable().ToVector(), scalar.ToVector());
  EXPECT_EQ(batched.ToEnumerable().Count(), 100u);
}

// --------------------- re-enumeration regression tests ---------------------
//
// Every combinator must keep its mutable per-enumeration state inside the
// puller created by each generator call — never in the generator closure
// itself — so one pipeline value can be enumerated many times (and
// concurrently). These tests enumerate each combinator's output twice,
// sequentially and interleaved, for both the scalar and the batched linq.

TEST(ReenumerationTest, EnumerableCombinatorsEnumerateTwice) {
  auto base = Enumerable<int>::FromVector(Ints(50));
  std::vector<Enumerable<int>> pipelines = {
      base,
      Enumerable<int>::Range(5, 20,
                             [](int64_t i) { return static_cast<int>(i); }),
      base.Where([](const int& v) { return v % 2 == 0; }),
      base.Select<int>([](const int& v) { return v + 1; }),
      base.OrderBy([](const int& a, const int& b) { return IntCmp(b, a); }),
      base.Skip(3),
      base.Take(7),
      base.Concat(Enumerable<int>::FromVector({100, 101})),
      Enumerable<int>::FromVector({3, 1, 3, 2, 1}).Distinct(IntCmp),
      Enumerable<int>::FromVector({1, 2, 3})
          .Join<int, int, int>(
              Enumerable<int>::FromVector({2, 3, 4}),
              [](const int& v) { return v; }, [](const int& v) { return v; },
              [](const int& a, const int& b) { return a * b; }),
      base.GroupBy<int, int>(
          [](const int& v) { return v % 5; },
          [](const int& k, const std::vector<int>& vs) {
            return k * 1000 + static_cast<int>(vs.size());
          }),
  };
  for (size_t i = 0; i < pipelines.size(); ++i) {
    auto first = pipelines[i].ToVector();
    auto second = pipelines[i].ToVector();
    EXPECT_EQ(first, second) << "pipeline #" << i;
    EXPECT_EQ(pipelines[i].Count(), first.size()) << "pipeline #" << i;
  }
}

TEST(ReenumerationTest, EnumerableInterleavedPullersAreIndependent) {
  auto e = Enumerable<int>::FromVector(Ints(10))
               .Where([](const int& v) { return v % 2 == 0; })
               .Select<int>([](const int& v) { return v * 10; });
  auto a = e.generator()();
  auto b = e.generator()();
  EXPECT_EQ(*a(), 0);
  EXPECT_EQ(*a(), 20);
  EXPECT_EQ(*b(), 0);  // a fresh puller starts over
  EXPECT_EQ(*a(), 40);
  EXPECT_EQ(*b(), 20);
}

TEST(ReenumerationTest, BatchEnumerableCombinatorsEnumerateTwice) {
  auto base = BatchEnumerable<int>::FromVector(Ints(50), 8);
  std::vector<BatchEnumerable<int>> pipelines = {
      base,
      BatchEnumerable<int>::FromBatches({{1, 2}, {3}, {4, 5, 6}}),
      BatchEnumerable<int>::Range(
          5, 20, [](int64_t i) { return static_cast<int>(i); }, 3),
      base.Where([](const int& v) { return v % 2 == 0; }),
      base.WhereBatch([](std::vector<int>* batch) {
        batch->erase(std::remove_if(batch->begin(), batch->end(),
                                    [](int v) { return v % 3 != 0; }),
                     batch->end());
      }),
      base.Select<int>([](const int& v) { return v + 1; }),
      base.OrderBy([](const int& a, const int& b) { return IntCmp(b, a); }),
      base.Skip(11),
      base.Take(13),
      base.Concat(BatchEnumerable<int>::FromVector({100, 101}, 2)),
      BatchEnumerable<int>::FromVector({3, 1, 3, 2, 1}, 2).Distinct(IntCmp),
      BatchEnumerable<int>::FromVector({1, 2, 3}, 2)
          .Join<int, int, int>(
              BatchEnumerable<int>::FromVector({2, 3, 4}, 2),
              [](const int& v) { return v; }, [](const int& v) { return v; },
              [](const int& a, const int& b) { return a * b; }),
      base.GroupBy<int, int>(
          [](const int& v) { return v % 5; },
          [](const int& k, const std::vector<int>& vs) {
            return k * 1000 + static_cast<int>(vs.size());
          }),
      BatchEnumerable<int>::FromEnumerable(
          Enumerable<int>::FromVector(Ints(20)), 6),
  };
  for (size_t i = 0; i < pipelines.size(); ++i) {
    auto first = pipelines[i].ToVector();
    auto second = pipelines[i].ToVector();
    EXPECT_EQ(first, second) << "pipeline #" << i;
    EXPECT_EQ(pipelines[i].Count(), first.size()) << "pipeline #" << i;
    EXPECT_EQ(pipelines[i].ToEnumerable().ToVector(), first)
        << "pipeline #" << i;
  }
}

TEST(BatchEnumerableTest, SelectParallelMatchesSelectAsMultiset) {
  auto source = BatchEnumerable<int>::FromVector(Ints(10000), 64);
  std::vector<int> expected =
      source.Select<int>([](const int& v) { return v * 3 + 1; }).ToVector();
  std::sort(expected.begin(), expected.end());
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    std::vector<int> got =
        source
            .SelectParallel<int>([](const int& v) { return v * 3 + 1; },
                                 threads)
            .ToVector();
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << "threads=" << threads;
  }
}

TEST(BatchEnumerableTest, SelectParallelAbandonedMidStreamJoinsWorkers) {
  auto e = BatchEnumerable<int>::FromVector(Ints(100000), 128)
               .SelectParallel<int>([](const int& v) { return v + 1; }, 4);
  auto pull = e.generator()();
  // Take one batch, then drop the puller: the enumeration's teardown must
  // stop and join the workers (no deadlock on the bounded queue, no leak).
  EXPECT_FALSE(pull().empty());
}

TEST(BatchEnumerableTest, SelectParallelEnumeratesTwice) {
  auto e = BatchEnumerable<int>::FromVector(Ints(500), 32)
               .SelectParallel<int>([](const int& v) { return v * 2; }, 3);
  for (int round = 0; round < 2; ++round) {
    std::vector<int> got = e.ToVector();
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got.size(), 500u) << "round " << round;
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], static_cast<int>(i) * 2) << "round " << round;
    }
  }
}

TEST(ReenumerationTest, BatchEnumerableInterleavedPullersAreIndependent) {
  auto e = BatchEnumerable<int>::FromVector(Ints(10), 2)
               .Select<int>([](const int& v) { return v * 10; });
  auto a = e.generator()();
  auto b = e.generator()();
  EXPECT_EQ(a(), (std::vector<int>{0, 10}));
  EXPECT_EQ(a(), (std::vector<int>{20, 30}));
  EXPECT_EQ(b(), (std::vector<int>{0, 10}));
  EXPECT_EQ(a(), (std::vector<int>{40, 50}));
}

}  // namespace
}  // namespace calcite
