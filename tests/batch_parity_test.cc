// Differential tests of the batched execution engine: for every physical
// operator of the enumerable convention, the output of the vectorized
// pipeline at several batch sizes must match `batch_size = 1` (the
// row-at-a-time degenerate mode) exactly, across empty inputs, NULL-heavy
// inputs, and cardinalities that straddle the default batch boundary
// (0 / 1 / 1023 / 1024 / 1025).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "adapters/enumerable/enumerable_rels.h"
#include "rel/core.h"
#include "rex/rex_builder.h"
#include "rex/rex_interpreter.h"
#include "storage/disk_table.h"
#include "test_schema.h"
#include "tools/frameworks.h"

namespace calcite {
namespace {

const std::vector<size_t> kCardinalities = {0, 1, 2, 1023, 1024, 1025};
const std::vector<size_t> kBatchSizes = {2, 3, 64, 1023, 1024, 4096};

/// Four columns: id INT NOT NULL (unique), k INT? (NULL every 3rd row),
/// s VARCHAR? (NULL every 5th row), d DOUBLE? (NULL every 4th row).
RelDataTypePtr TestRowType(const TypeFactory& tf) {
  auto int_t = tf.CreateSqlType(SqlTypeName::kInteger);
  auto int_null = tf.CreateSqlType(SqlTypeName::kInteger, -1, true);
  auto str_null = tf.CreateSqlType(SqlTypeName::kVarchar, 20, true);
  auto dbl_null = tf.CreateSqlType(SqlTypeName::kDouble, -1, true);
  return tf.CreateStructType({"id", "k", "s", "d"},
                             {int_t, int_null, str_null, dbl_null});
}

std::vector<Row> MakeRows(size_t n) {
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back(
        {Value::Int(static_cast<int64_t>(i)),
         i % 3 == 0 ? Value::Null() : Value::Int(static_cast<int64_t>(i % 7)),
         i % 5 == 0 ? Value::Null()
                    : Value::String("s" + std::to_string(i % 11)),
         i % 4 == 0 ? Value::Null()
                    : Value::Double(static_cast<double>(i % 13) * 0.5)});
  }
  return rows;
}

Result<std::vector<Row>> RunBatched(const RelNodePtr& node,
                                    size_t batch_size) {
  ExecOptions opts;
  opts.batch_size = batch_size;
  auto puller = node->ExecuteBatched(opts);
  if (!puller.ok()) return puller.status();
  // Drain by hand so the batching discipline itself is checked: every
  // batch respects the configured cap (joins flush skewed output through a
  // pending buffer), and an empty batch only ever appears as the
  // end-of-stream marker (enforced here by breaking on it — a mid-stream
  // empty batch would truncate the output and fail the row comparison).
  std::vector<Row> out;
  for (;;) {
    auto batch = (puller.value())();
    if (!batch.ok()) return batch.status();
    if (batch.value().empty()) break;
    EXPECT_LE(batch.value().size(), std::max<size_t>(batch_size, 1));
    for (Row& row : batch.value()) out.push_back(std::move(row));
  }
  return out;
}

/// Runs `node` at batch_size = 1 and asserts every other batch size (and
/// the materializing Execute() surface) produces identical rows.
void ExpectParity(const RelNodePtr& node, const std::string& label) {
  auto base = RunBatched(node, 1);
  ASSERT_TRUE(base.ok()) << label << ": " << base.status().ToString();
  for (size_t bs : kBatchSizes) {
    auto got = RunBatched(node, bs);
    ASSERT_TRUE(got.ok()) << label << " bs=" << bs << ": "
                          << got.status().ToString();
    ASSERT_EQ(got.value().size(), base.value().size())
        << label << " bs=" << bs;
    for (size_t i = 0; i < got.value().size(); ++i) {
      ASSERT_EQ(RowToString(got.value()[i]), RowToString(base.value()[i]))
          << label << " bs=" << bs << " row " << i;
    }
  }
  auto exec = node->Execute();
  ASSERT_TRUE(exec.ok()) << label;
  ASSERT_EQ(exec.value().size(), base.value().size()) << label << " Execute()";
  for (size_t i = 0; i < exec.value().size(); ++i) {
    ASSERT_EQ(RowToString(exec.value()[i]), RowToString(base.value()[i]))
        << label << " Execute() row " << i;
  }
}

class BatchParityTest : public ::testing::Test {
 protected:
  RelNodePtr Leaf(size_t n) {
    return EnumerableValues::Create(TestRowType(tf_), MakeRows(n));
  }

  RexNodePtr Field(const RelDataTypePtr& row_type, int i) {
    return rex_.MakeInputRef(row_type, i);
  }

  TypeFactory tf_;
  RexBuilder rex_;
};

TEST_F(BatchParityTest, TableScan) {
  for (size_t n : kCardinalities) {
    auto table = std::make_shared<MemTable>(TestRowType(tf_), MakeRows(n));
    auto logical = LogicalTableScan::Create(table, {"t"},
                                            Convention::Enumerable(), tf_);
    auto scan = EnumerableTableScan::Create(
        *static_cast<const TableScan*>(logical.get()));
    ExpectParity(scan, "TableScan n=" + std::to_string(n));
  }
}

TEST_F(BatchParityTest, Values) {
  for (size_t n : kCardinalities) {
    ExpectParity(Leaf(n), "Values n=" + std::to_string(n));
  }
}

TEST_F(BatchParityTest, FilterFastPathsAndFallback) {
  for (size_t n : kCardinalities) {
    RelNodePtr leaf = Leaf(n);
    const RelDataTypePtr& rt = leaf->row_type();
    // Vectorized fast paths: conjunction of comparison + IS NOT NULL.
    auto cmp = rex_.MakeCall(OpKind::kLessThan,
                             {Field(rt, 0), rex_.MakeIntLiteral(900)});
    ASSERT_TRUE(cmp.ok());
    auto not_null =
        rex_.MakeCall(OpKind::kIsNotNull, {Field(rt, 1)});
    ASSERT_TRUE(not_null.ok());
    RexNodePtr both = rex_.MakeAnd({cmp.value(), not_null.value()});
    ExpectParity(EnumerableFilter::Create(leaf, both),
                 "Filter(and) n=" + std::to_string(n));

    // NULL-producing comparison on a nullable column.
    auto dbl_cmp = rex_.MakeCall(
        OpKind::kGreaterThan, {Field(rt, 3), rex_.MakeDoubleLiteral(2.0)});
    ASSERT_TRUE(dbl_cmp.ok());
    ExpectParity(EnumerableFilter::Create(leaf, dbl_cmp.value()),
                 "Filter(nullable cmp) n=" + std::to_string(n));

    // Scalar fallback: OR over LIKE and IS NULL.
    auto like = rex_.MakeCall(
        OpKind::kLike, {Field(rt, 2), rex_.MakeStringLiteral("s1%")});
    ASSERT_TRUE(like.ok());
    auto is_null = rex_.MakeCall(OpKind::kIsNull, {Field(rt, 2)});
    ASSERT_TRUE(is_null.ok());
    RexNodePtr either = rex_.MakeOr({like.value(), is_null.value()});
    ExpectParity(EnumerableFilter::Create(leaf, either),
                 "Filter(or fallback) n=" + std::to_string(n));

    // A filter that eliminates everything.
    ExpectParity(EnumerableFilter::Create(leaf, rex_.MakeBoolLiteral(false)),
                 "Filter(false) n=" + std::to_string(n));
  }
}

TEST_F(BatchParityTest, Project) {
  for (size_t n : kCardinalities) {
    RelNodePtr leaf = Leaf(n);
    const RelDataTypePtr& rt = leaf->row_type();
    auto sum = rex_.MakeCall(OpKind::kPlus,
                             {Field(rt, 0), rex_.MakeIntLiteral(7)});
    ASSERT_TRUE(sum.ok());
    auto upper = rex_.MakeCall(OpKind::kUpper, {Field(rt, 2)});
    ASSERT_TRUE(upper.ok());
    std::vector<RexNodePtr> exprs = {Field(rt, 0), sum.value(), upper.value(),
                                     rex_.MakeStringLiteral("const"),
                                     Field(rt, 3)};
    auto row_type = DeriveProjectRowType(
        exprs, {"id", "id7", "us", "c", "d"}, tf_);
    ExpectParity(EnumerableProject::Create(leaf, exprs, row_type),
                 "Project n=" + std::to_string(n));
  }
}

TEST_F(BatchParityTest, HashJoinAllTypes) {
  const std::vector<JoinType> join_types = {
      JoinType::kInner, JoinType::kLeft,  JoinType::kRight,
      JoinType::kFull,  JoinType::kSemi,  JoinType::kAnti};
  for (size_t n : {size_t{0}, size_t{1}, size_t{1023}, size_t{1025}}) {
    for (size_t m : {size_t{0}, size_t{37}, size_t{300}}) {
      RelNodePtr left = Leaf(n);
      RelNodePtr right = Leaf(m);
      const RelDataTypePtr& lt = left->row_type();
      const RelDataTypePtr& rt = right->row_type();
      // Equi-key on the NULL-heavy k columns ($1 = $5 in join coordinates)
      // plus a non-equi residual ($0 < $4 + 700).
      size_t left_width = lt->fields().size();
      auto equi = rex_.MakeEquals(
          Field(lt, 1),
          rex_.MakeInputRef(static_cast<int>(left_width) + 1,
                            rt->fields()[1].type));
      auto bound = rex_.MakeCall(
          OpKind::kPlus,
          {rex_.MakeInputRef(static_cast<int>(left_width) + 0,
                             rt->fields()[0].type),
           rex_.MakeIntLiteral(700)});
      ASSERT_TRUE(bound.ok());
      auto residual =
          rex_.MakeCall(OpKind::kLessThan, {Field(lt, 0), bound.value()});
      ASSERT_TRUE(residual.ok());
      RexNodePtr condition = rex_.MakeAnd({equi, residual.value()});
      for (JoinType jt : join_types) {
        auto row_type = DeriveJoinRowType(lt, rt, jt, tf_);
        auto join = EnumerableHashJoin::Create(left, right, condition, jt,
                                               row_type);
        ExpectParity(join, std::string("HashJoin ") + JoinTypeName(jt) +
                               " n=" + std::to_string(n) +
                               " m=" + std::to_string(m));
      }
    }
  }
}

TEST_F(BatchParityTest, NestedLoopJoin) {
  const std::vector<JoinType> join_types = {
      JoinType::kInner, JoinType::kLeft,  JoinType::kRight,
      JoinType::kFull,  JoinType::kSemi,  JoinType::kAnti};
  for (size_t n : {size_t{0}, size_t{1}, size_t{1025}}) {
    for (size_t m : {size_t{0}, size_t{23}}) {
      RelNodePtr left = Leaf(n);
      RelNodePtr right = Leaf(m);
      const RelDataTypePtr& lt = left->row_type();
      const RelDataTypePtr& rt = right->row_type();
      size_t left_width = lt->fields().size();
      // Pure non-equi condition: left.k > right.k (NULLs never pass).
      auto cond = rex_.MakeCall(
          OpKind::kGreaterThan,
          {Field(lt, 1), rex_.MakeInputRef(static_cast<int>(left_width) + 1,
                                           rt->fields()[1].type)});
      ASSERT_TRUE(cond.ok());
      for (JoinType jt : join_types) {
        auto row_type = DeriveJoinRowType(lt, rt, jt, tf_);
        auto join = EnumerableNestedLoopJoin::Create(left, right, cond.value(),
                                                     jt, row_type);
        ExpectParity(join, std::string("NestedLoopJoin ") + JoinTypeName(jt) +
                               " n=" + std::to_string(n) +
                               " m=" + std::to_string(m));
      }
    }
  }
}

TEST_F(BatchParityTest, AggregateGlobalAndGrouped) {
  for (size_t n : kCardinalities) {
    RelNodePtr leaf = Leaf(n);
    const RelDataTypePtr& rt = leaf->row_type();
    std::vector<AggregateCall> calls;
    {
      AggregateCall c;
      c.kind = AggKind::kCountStar;
      c.name = "cnt";
      calls.push_back(c);
      c.kind = AggKind::kCount;
      c.args = {1};
      c.name = "cnt_k";
      calls.push_back(c);
      c.kind = AggKind::kSum;
      c.args = {3};
      c.name = "sum_d";
      calls.push_back(c);
      c.kind = AggKind::kAvg;
      c.args = {0};
      c.name = "avg_id";
      calls.push_back(c);
      c.kind = AggKind::kMin;
      c.args = {2};
      c.name = "min_s";
      calls.push_back(c);
      c.kind = AggKind::kMax;
      c.args = {3};
      c.name = "max_d";
      calls.push_back(c);
      c.kind = AggKind::kCount;
      c.args = {1};
      c.distinct = true;
      c.name = "cntd_k";
      calls.push_back(c);
    }
    // Global aggregate (one output row even over empty input).
    {
      auto row_type = DeriveAggregateRowType(rt, {}, calls, tf_);
      ExpectParity(EnumerableAggregate::Create(leaf, {}, calls, row_type),
                   "Aggregate(global) n=" + std::to_string(n));
    }
    // Grouped by the NULL-heavy k column.
    {
      auto row_type = DeriveAggregateRowType(rt, {1}, calls, tf_);
      ExpectParity(EnumerableAggregate::Create(leaf, {1}, calls, row_type),
                   "Aggregate(k) n=" + std::to_string(n));
    }
    // Grouped by two columns.
    {
      auto row_type = DeriveAggregateRowType(rt, {1, 2}, calls, tf_);
      ExpectParity(EnumerableAggregate::Create(leaf, {1, 2}, calls, row_type),
                   "Aggregate(k,s) n=" + std::to_string(n));
    }
  }
}

TEST_F(BatchParityTest, SortOffsetFetch) {
  for (size_t n : kCardinalities) {
    RelNodePtr leaf = Leaf(n);
    RelCollation by_k_desc_id(
        {{1, Direction::kDescending}, {0, Direction::kAscending}});
    ExpectParity(EnumerableSort::Create(leaf, by_k_desc_id, 0, -1),
                 "Sort n=" + std::to_string(n));
    ExpectParity(EnumerableSort::Create(leaf, by_k_desc_id, 5, 100),
                 "Sort offset/fetch n=" + std::to_string(n));
    ExpectParity(EnumerableSort::Create(leaf, RelCollation(), 3, 1100),
                 "Limit-only n=" + std::to_string(n));
  }
}

TEST_F(BatchParityTest, SetOps) {
  for (size_t n : {size_t{0}, size_t{1}, size_t{1024}, size_t{1025}}) {
    // Overlapping inputs: [0, n) and [n/2, n/2 + n) modulo the row pattern
    // repeating every 3*4*5*7*11 rows, so duplicates exist across inputs.
    std::vector<Row> a = MakeRows(n);
    std::vector<Row> b = MakeRows(n == 0 ? 0 : n / 2 + 1);
    auto row_type = TestRowType(tf_);
    RelNodePtr left = EnumerableValues::Create(row_type, a);
    RelNodePtr right = EnumerableValues::Create(row_type, b);
    for (auto kind : {SetOp::Kind::kUnion, SetOp::Kind::kIntersect,
                      SetOp::Kind::kMinus}) {
      for (bool all : {true, false}) {
        auto setop = EnumerableSetOp::Create({left, right}, kind, all,
                                             row_type);
        ExpectParity(setop, "SetOp kind=" + std::to_string(static_cast<int>(
                                kind)) +
                                " all=" + std::to_string(all) +
                                " n=" + std::to_string(n));
      }
    }
    // Three-input union.
    auto u3 = EnumerableSetOp::Create({left, right, left},
                                      SetOp::Kind::kUnion, true, row_type);
    ExpectParity(u3, "Union3 n=" + std::to_string(n));
  }
}

TEST_F(BatchParityTest, Window) {
  for (size_t n : {size_t{0}, size_t{1}, size_t{200}, size_t{1025}}) {
    RelNodePtr leaf = Leaf(n);
    const RelDataTypePtr& rt = leaf->row_type();
    WindowGroup group;
    group.partition_keys = {1};
    group.order = RelCollation::Of({0});
    group.is_rows = true;
    group.preceding = 2;
    group.following = 0;
    {
      AggregateCall c;
      c.kind = AggKind::kSum;
      c.args = {0};
      c.name = "running";
      group.agg_calls.push_back(c);
    }
    auto row_type = DeriveWindowRowType(rt, {group}, tf_);
    ExpectParity(EnumerableWindow::Create(leaf, {group}, row_type),
                 "Window n=" + std::to_string(n));
  }
}

TEST_F(BatchParityTest, Interpreter) {
  for (size_t n : kCardinalities) {
    ExpectParity(EnumerableInterpreter::Create(Leaf(n)),
                 "Interpreter n=" + std::to_string(n));
  }
}

// --------------------- selection-pushdown parity ----------------------------
//
// The selection-aware pipeline (filters narrow a SelectionVector, leaf
// scans evaluate pushed predicates before materializing rows) must be
// byte-identical to the compacting path. Each case is checked two ways:
// ExpectParity sweeps batch sizes against the row-at-a-time degenerate
// mode, and an explicit per-row EvalPredicate oracle reproduces what the
// old compact-after-every-filter pipeline produced.

/// Rows of `rows` passing all `conditions` under the per-row interpreter —
/// the compacting pipeline's semantics, computed independently of the
/// batch engine.
std::vector<Row> RowAtATimeFilter(const std::vector<Row>& rows,
                                  const std::vector<RexNodePtr>& conditions) {
  std::vector<Row> out;
  for (const Row& row : rows) {
    bool pass = true;
    for (const RexNodePtr& cond : conditions) {
      auto got = RexInterpreter::EvalPredicate(cond, row);
      EXPECT_TRUE(got.ok()) << got.status().ToString();
      if (!got.ok() || !got.value()) {
        pass = false;
        break;
      }
    }
    if (pass) out.push_back(row);
  }
  return out;
}

void ExpectSameRows(const std::vector<Row>& got, const std::vector<Row>& want,
                    const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(RowToString(got[i]), RowToString(want[i]))
        << label << " row " << i;
  }
}

TEST_F(BatchParityTest, StackedFiltersSelectionParity) {
  for (size_t n : kCardinalities) {
    RelNodePtr leaf = Leaf(n);
    const RelDataTypePtr& rt = leaf->row_type();
    // Three stacked filters: a fused comparison, a NULL test, and a
    // fallback OR — the selection narrows through all three without an
    // intermediate compaction.
    auto c1 = rex_.MakeCall(OpKind::kLessThan,
                            {Field(rt, 0), rex_.MakeIntLiteral(900)});
    ASSERT_TRUE(c1.ok());
    auto c2 = rex_.MakeCall(OpKind::kIsNotNull, {Field(rt, 1)});
    ASSERT_TRUE(c2.ok());
    auto like = rex_.MakeCall(
        OpKind::kLike, {Field(rt, 2), rex_.MakeStringLiteral("s1%")});
    ASSERT_TRUE(like.ok());
    auto dgt = rex_.MakeCall(OpKind::kGreaterThan,
                             {Field(rt, 3), rex_.MakeDoubleLiteral(1.0)});
    ASSERT_TRUE(dgt.ok());
    RexNodePtr c3 = rex_.MakeOr({like.value(), dgt.value()});

    RelNodePtr stacked = EnumerableFilter::Create(
        EnumerableFilter::Create(
            EnumerableFilter::Create(leaf, c1.value()), c2.value()),
        c3);
    ExpectParity(stacked, "StackedFilters n=" + std::to_string(n));

    // Independent row-at-a-time oracle (the compacting path's output).
    auto got = RunBatched(stacked, 1024);
    ASSERT_TRUE(got.ok());
    ExpectSameRows(got.value(),
                   RowAtATimeFilter(MakeRows(n), {c1.value(), c2.value(), c3}),
                   "StackedFilters oracle n=" + std::to_string(n));
  }
}

TEST_F(BatchParityTest, FilterUnderJoinSelectionParity) {
  // Both join inputs sit under filters, so the probe side consumes a
  // selection-carrying stream; every join type must stay byte-identical.
  const std::vector<JoinType> join_types = {
      JoinType::kInner, JoinType::kLeft,  JoinType::kRight,
      JoinType::kFull,  JoinType::kSemi,  JoinType::kAnti};
  for (size_t n : {size_t{0}, size_t{1}, size_t{1023}, size_t{1025}}) {
    RelNodePtr left_leaf = Leaf(n);
    RelNodePtr right_leaf = Leaf(97);
    const RelDataTypePtr& lt = left_leaf->row_type();
    const RelDataTypePtr& rt = right_leaf->row_type();
    auto lcond = rex_.MakeCall(OpKind::kGreaterThanOrEqual,
                               {Field(lt, 0), rex_.MakeIntLiteral(3)});
    ASSERT_TRUE(lcond.ok());
    auto rcond = rex_.MakeCall(OpKind::kIsNotNull, {Field(rt, 1)});
    ASSERT_TRUE(rcond.ok());
    RelNodePtr left = EnumerableFilter::Create(left_leaf, lcond.value());
    RelNodePtr right = EnumerableFilter::Create(right_leaf, rcond.value());
    size_t left_width = lt->fields().size();
    auto equi = rex_.MakeEquals(
        Field(lt, 1), rex_.MakeInputRef(static_cast<int>(left_width) + 1,
                                        rt->fields()[1].type));
    for (JoinType jt : join_types) {
      auto row_type = DeriveJoinRowType(lt, rt, jt, tf_);
      ExpectParity(EnumerableHashJoin::Create(left, right, equi, jt, row_type),
                   std::string("FilterUnderHashJoin ") + JoinTypeName(jt) +
                       " n=" + std::to_string(n));
    }
    // Nested loop probe is selection-aware too.
    auto nl_cond = rex_.MakeCall(
        OpKind::kGreaterThan,
        {Field(lt, 1), rex_.MakeInputRef(static_cast<int>(left_width) + 1,
                                         rt->fields()[1].type)});
    ASSERT_TRUE(nl_cond.ok());
    auto nl_type = DeriveJoinRowType(lt, rt, JoinType::kInner, tf_);
    ExpectParity(EnumerableNestedLoopJoin::Create(left, right, nl_cond.value(),
                                                  JoinType::kInner, nl_type),
                 "FilterUnderNestedLoop n=" + std::to_string(n));
  }
}

TEST_F(BatchParityTest, FilterUnderAggregateSelectionParity) {
  for (size_t n : kCardinalities) {
    RelNodePtr leaf = Leaf(n);
    const RelDataTypePtr& rt = leaf->row_type();
    auto cond = rex_.MakeCall(OpKind::kLessThan,
                              {Field(rt, 0), rex_.MakeIntLiteral(777)});
    ASSERT_TRUE(cond.ok());
    RelNodePtr filtered = EnumerableFilter::Create(leaf, cond.value());
    std::vector<AggregateCall> calls;
    {
      AggregateCall c;
      c.kind = AggKind::kCountStar;
      c.name = "cnt";
      calls.push_back(c);
      c.kind = AggKind::kSum;
      c.args = {3};
      c.name = "sum_d";
      calls.push_back(c);
      c.kind = AggKind::kCount;
      c.args = {1};
      c.distinct = true;
      c.name = "cntd_k";
      calls.push_back(c);
    }
    // Global: COUNT(*) must count only the selected rows (AddBatchSel).
    {
      auto row_type = DeriveAggregateRowType(rt, {}, calls, tf_);
      ExpectParity(EnumerableAggregate::Create(filtered, {}, calls, row_type),
                   "FilterUnderAggregate(global) n=" + std::to_string(n));
    }
    // Grouped by the NULL-heavy column.
    {
      auto row_type = DeriveAggregateRowType(rt, {1}, calls, tf_);
      ExpectParity(
          EnumerableAggregate::Create(filtered, {1}, calls, row_type),
          "FilterUnderAggregate(k) n=" + std::to_string(n));
    }
  }
}

namespace {

/// A table without physical row storage: exercises the default
/// ScanBatchedFiltered (filter *after* the generic batched scan) as the
/// reference for the pushdown overrides.
class PostFilterTable : public Table {
 public:
  PostFilterTable(RelDataTypePtr row_type, std::vector<Row> rows)
      : row_type_(std::move(row_type)), rows_(std::move(rows)) {}
  RelDataTypePtr GetRowType(const TypeFactory&) const override {
    return row_type_;
  }
  Result<std::vector<Row>> Scan() const override { return rows_; }

 private:
  RelDataTypePtr row_type_;
  std::vector<Row> rows_;
};

}  // namespace

TEST_F(BatchParityTest, ScanPredicatePushdownParity) {
  // The same filter over (a) a MemTable scan — predicates pushed into the
  // leaf, rows filtered before materialization — (b) a storage-less table
  // using the default post-scan filtering, and (c) a Values leaf — no
  // pushdown, selection narrowing only — must produce byte-identical rows.
  for (size_t n : kCardinalities) {
    std::vector<Row> rows = MakeRows(n);
    auto row_type = TestRowType(tf_);

    // Mixed condition: two pushable conjuncts ($0 < 900, $1 IS NOT NULL,
    // and the mirrored literal-first 700 > $0) plus a fallback residual.
    auto c1 = rex_.MakeCall(OpKind::kLessThan,
                            {Field(row_type, 0), rex_.MakeIntLiteral(900)});
    ASSERT_TRUE(c1.ok());
    auto c2 = rex_.MakeCall(OpKind::kIsNotNull, {Field(row_type, 1)});
    ASSERT_TRUE(c2.ok());
    auto c3 = rex_.MakeCall(OpKind::kGreaterThan,
                            {rex_.MakeIntLiteral(700), Field(row_type, 0)});
    ASSERT_TRUE(c3.ok());
    auto like = rex_.MakeCall(
        OpKind::kLike, {Field(row_type, 2), rex_.MakeStringLiteral("s%")});
    ASSERT_TRUE(like.ok());
    const std::vector<RexNodePtr> conditions = {
        rex_.MakeAnd({c1.value(), c2.value(), c3.value(), like.value()}),
        rex_.MakeAnd({c1.value(), c2.value()}),  // fully pushable
        like.value(),                            // nothing pushable
    };

    for (size_t ci = 0; ci < conditions.size(); ++ci) {
      const RexNodePtr& cond = conditions[ci];
      auto make_scan_plan = [&](TablePtr table) {
        auto logical = LogicalTableScan::Create(table, {"t"},
                                                Convention::Enumerable(), tf_);
        auto scan = EnumerableTableScan::Create(
            *static_cast<const TableScan*>(logical.get()));
        return EnumerableFilter::Create(scan, cond);
      };
      RelNodePtr pushdown =
          make_scan_plan(std::make_shared<MemTable>(row_type, rows));
      RelNodePtr post_filter =
          make_scan_plan(std::make_shared<PostFilterTable>(row_type, rows));
      RelNodePtr values_plan = EnumerableFilter::Create(
          EnumerableValues::Create(row_type, rows), cond);

      std::string label = "ScanPushdown n=" + std::to_string(n) +
                          " cond=" + std::to_string(ci);
      ExpectParity(pushdown, label);
      std::vector<Row> oracle = RowAtATimeFilter(rows, {cond});
      for (size_t bs : {size_t{1}, size_t{3}, size_t{1024}}) {
        auto a = RunBatched(pushdown, bs);
        ASSERT_TRUE(a.ok()) << label;
        auto b = RunBatched(post_filter, bs);
        ASSERT_TRUE(b.ok()) << label;
        auto c = RunBatched(values_plan, bs);
        ASSERT_TRUE(c.ok()) << label;
        ExpectSameRows(a.value(), oracle, label + " pushdown bs=" +
                                              std::to_string(bs));
        ExpectSameRows(b.value(), oracle, label + " post-filter bs=" +
                                              std::to_string(bs));
        ExpectSameRows(c.value(), oracle, label + " values bs=" +
                                              std::to_string(bs));
      }
    }
  }
}

TEST_F(BatchParityTest, DiskTablePushdownParity) {
  // The same filtered scans over an out-of-core DiskTable whose buffer pool
  // is far smaller than the table: the B-tree index route (primary-key
  // conjuncts), the forced-off heap route, a MemTable, and the per-row
  // interpreter oracle must all agree — and the 4-way paged morsel-parallel
  // execution must produce the same multiset.
  char tmpl[] = "/tmp/calcite_disk_parity_XXXXXX";
  char* dir = mkdtemp(tmpl);
  ASSERT_NE(dir, nullptr);
  const std::string dir_path = dir;

  for (size_t n : {size_t{0}, size_t{1}, size_t{1025}, size_t{4000}}) {
    std::vector<Row> rows = MakeRows(n);
    auto row_type = TestRowType(tf_);

    storage::DiskTableOptions dt_opts;
    dt_opts.pool_pages = 8;  // the 4000-row heap spans ~10x more pages
    auto disk_table = storage::DiskTable::Create(
        dir_path + "/t" + std::to_string(n) + ".db", row_type, 0, dt_opts);
    ASSERT_TRUE(disk_table.ok()) << disk_table.status().ToString();
    ASSERT_TRUE((*disk_table)->InsertRows(rows).ok());

    // A primary-key range plus a residual (index route with re-check), a
    // pure key range (index route alone), and a residual-only condition
    // (no key bound — heap route even with the index enabled).
    auto lo = rex_.MakeCall(OpKind::kGreaterThanOrEqual,
                            {Field(row_type, 0), rex_.MakeIntLiteral(100)});
    ASSERT_TRUE(lo.ok());
    auto hi = rex_.MakeCall(OpKind::kLessThan,
                            {Field(row_type, 0), rex_.MakeIntLiteral(900)});
    ASSERT_TRUE(hi.ok());
    auto residual = rex_.MakeCall(OpKind::kIsNotNull, {Field(row_type, 1)});
    ASSERT_TRUE(residual.ok());
    const std::vector<RexNodePtr> conditions = {
        rex_.MakeAnd({lo.value(), hi.value(), residual.value()}),
        rex_.MakeAnd({lo.value(), hi.value()}),
        residual.value(),
    };

    for (size_t ci = 0; ci < conditions.size(); ++ci) {
      const RexNodePtr& cond = conditions[ci];
      auto make_plan = [&](TablePtr table) {
        auto logical = LogicalTableScan::Create(table, {"t"},
                                                Convention::Enumerable(), tf_);
        auto scan = EnumerableTableScan::Create(
            *static_cast<const TableScan*>(logical.get()));
        return EnumerableFilter::Create(scan, cond);
      };
      RelNodePtr disk_plan = make_plan(*disk_table);
      RelNodePtr mem_plan =
          make_plan(std::make_shared<MemTable>(row_type, rows));
      std::vector<Row> oracle = RowAtATimeFilter(rows, {cond});
      std::string label = "DiskPushdown n=" + std::to_string(n) +
                          " cond=" + std::to_string(ci);

      (*disk_table)->set_index_scan_enabled(true);
      ExpectParity(disk_plan, label + " (index on)");
      for (size_t bs : {size_t{1}, size_t{3}, size_t{1024}}) {
        (*disk_table)->set_index_scan_enabled(true);
        auto via_index = RunBatched(disk_plan, bs);
        ASSERT_TRUE(via_index.ok()) << label;
        (*disk_table)->set_index_scan_enabled(false);
        auto via_heap = RunBatched(disk_plan, bs);
        ASSERT_TRUE(via_heap.ok()) << label;
        auto via_mem = RunBatched(mem_plan, bs);
        ASSERT_TRUE(via_mem.ok()) << label;
        ExpectSameRows(via_index.value(), oracle,
                       label + " index bs=" + std::to_string(bs));
        ExpectSameRows(via_heap.value(), oracle,
                       label + " heap bs=" + std::to_string(bs));
        ExpectSameRows(via_mem.value(), oracle,
                       label + " mem bs=" + std::to_string(bs));
      }
      (*disk_table)->set_index_scan_enabled(true);

      // 4-way parallel: workers claim page runs as morsels; order within
      // the fragment is unspecified, so compare as sorted multisets.
      ExecOptions par_opts;
      par_opts.num_threads = 4;
      auto par_puller = disk_plan->ExecuteBatched(par_opts);
      ASSERT_TRUE(par_puller.ok()) << label << ": "
                                   << par_puller.status().ToString();
      std::vector<Row> par_rows;
      for (;;) {
        auto batch = (par_puller.value())();
        ASSERT_TRUE(batch.ok()) << label << ": " << batch.status().ToString();
        if (batch.value().empty()) break;
        for (Row& row : batch.value()) par_rows.push_back(std::move(row));
      }
      std::vector<std::string> got_sorted, want_sorted;
      for (const Row& row : par_rows) got_sorted.push_back(RowToString(row));
      for (const Row& row : oracle) want_sorted.push_back(RowToString(row));
      std::sort(got_sorted.begin(), got_sorted.end());
      std::sort(want_sorted.begin(), want_sorted.end());
      ASSERT_EQ(got_sorted, want_sorted) << label << " threads=4";
      EXPECT_EQ((*disk_table)->buffer_pool().pinned_frames(), 0u) << label;
    }
  }
  std::error_code ec;
  std::filesystem::remove_all(dir_path, ec);
}

TEST_F(BatchParityTest, ExtractScanPredicatesSplitsConjunction) {
  auto row_type = TestRowType(tf_);
  auto c1 = rex_.MakeCall(OpKind::kLessThan,
                          {Field(row_type, 0), rex_.MakeIntLiteral(10)});
  ASSERT_TRUE(c1.ok());
  auto c2 = rex_.MakeCall(OpKind::kGreaterThanOrEqual,
                          {rex_.MakeDoubleLiteral(0.5), Field(row_type, 3)});
  ASSERT_TRUE(c2.ok());
  auto c3 = rex_.MakeCall(OpKind::kIsNull, {Field(row_type, 1)});
  ASSERT_TRUE(c3.ok());
  auto like = rex_.MakeCall(
      OpKind::kLike, {Field(row_type, 2), rex_.MakeStringLiteral("s%")});
  ASSERT_TRUE(like.ok());
  // Nested AND: ((c1 AND c2) AND (c3 AND like)).
  RexNodePtr cond = rex_.MakeAnd(
      {rex_.MakeAnd({c1.value(), c2.value()}),
       rex_.MakeAnd({c3.value(), like.value()})});
  ScanPredicateList pushed;
  std::vector<RexNodePtr> residual;
  ASSERT_TRUE(ExtractScanPredicates(cond, 4, &pushed, &residual));
  ASSERT_EQ(pushed.size(), 3u);
  EXPECT_EQ(pushed[0].kind, ScanPredicate::Kind::kLessThan);
  EXPECT_EQ(pushed[0].column, 0);
  // `0.5 >= $3` must arrive mirrored as `$3 <= 0.5`.
  EXPECT_EQ(pushed[1].kind, ScanPredicate::Kind::kLessThanOrEqual);
  EXPECT_EQ(pushed[1].column, 3);
  EXPECT_EQ(pushed[2].kind, ScanPredicate::Kind::kIsNull);
  EXPECT_EQ(pushed[2].column, 1);
  ASSERT_EQ(residual.size(), 1u);
  EXPECT_EQ(residual[0]->ToString(), like.value()->ToString());

  // A ref-vs-ref comparison or an out-of-range column is not pushable.
  auto refs = rex_.MakeCall(OpKind::kEquals,
                            {Field(row_type, 0), Field(row_type, 1)});
  ASSERT_TRUE(refs.ok());
  pushed.clear();
  residual.clear();
  EXPECT_FALSE(ExtractScanPredicates(refs.value(), 4, &pushed, &residual));
  EXPECT_TRUE(pushed.empty());
  ASSERT_EQ(residual.size(), 1u);
  pushed.clear();
  residual.clear();
  EXPECT_FALSE(ExtractScanPredicates(c1.value(), /*scan_width=*/0, &pushed,
                                     &residual));
  ASSERT_EQ(residual.size(), 1u);
}

// ------------------------- SQL-level differential --------------------------
//
// Whole optimized plans must produce byte-identical result grids whatever
// the configured batch size.

TEST(BatchParitySqlTest, QueriesMatchAcrossBatchSizes) {
  const std::vector<std::string> queries = {
      "SELECT * FROM sales",
      "SELECT saleid, units FROM sales WHERE discount IS NOT NULL",
      "SELECT products.name, COUNT(*) AS c, SUM(sales.units) AS u "
      "FROM sales JOIN products USING (productId) "
      "GROUP BY products.name ORDER BY c DESC, products.name",
      "SELECT deptno, COUNT(*) AS c FROM emps GROUP BY deptno "
      "ORDER BY deptno",
      "SELECT name FROM emps WHERE salary > 8000 "
      "UNION SELECT dept_name FROM depts",
      "SELECT empid FROM emps ORDER BY salary DESC LIMIT 2 OFFSET 1",
      "SELECT COUNT(*) AS c, SUM(units) AS s FROM sales",
  };
  std::vector<std::string> baseline;
  {
    Connection::Config config;
    config.schema = testing::MakeTestSchema();
    config.exec_options.batch_size = 1;
    Connection conn(std::move(config));
    for (const std::string& sql : queries) {
      auto result = conn.Query(sql);
      ASSERT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
      baseline.push_back(result.value().ToTable());
    }
  }
  for (size_t bs : {size_t{2}, size_t{3}, size_t{1024}}) {
    Connection::Config config;
    config.schema = testing::MakeTestSchema();
    config.exec_options.batch_size = bs;
    Connection conn(std::move(config));
    for (size_t q = 0; q < queries.size(); ++q) {
      auto result = conn.Query(queries[q]);
      ASSERT_TRUE(result.ok())
          << queries[q] << ": " << result.status().ToString();
      EXPECT_EQ(result.value().ToTable(), baseline[q])
          << queries[q] << " bs=" << bs;
    }
  }
}

}  // namespace
}  // namespace calcite
