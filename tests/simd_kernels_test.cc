// Unit and differential tests of the exec/simd.h kernel layer: every kernel
// must produce byte-identical output with dispatch forced to the scalar
// reference path and with the widest compiled vector path, across sizes that
// straddle every vector-block boundary (4-lane groups, 8-entry LUT bytes,
// 32-byte mask blocks) plus odd tails. On a CALCITE_SIMD=OFF build both runs
// take the scalar path and the diffs degenerate to self-comparison — the CI
// matrix builds both ways so the reference path stays exercised everywhere.

#include "exec/simd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

namespace calcite {
namespace simd {
namespace {

const std::vector<size_t> kSizes = {0,  1,  3,  4,   5,    7,    8,   15,
                                    16, 17, 31, 32,  33,   63,   64,  65,
                                    100, 1023, 1024, 1025};

const Cmp kCmps[] = {Cmp::kEq, Cmp::kNe, Cmp::kLt, Cmp::kLe, Cmp::kGt,
                     Cmp::kGe};
const Arith kAriths[] = {Arith::kAdd, Arith::kSub, Arith::kMul};

std::vector<int64_t> RandomI64(size_t n, uint32_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<int64_t> v(n);
  for (size_t i = 0; i < n; ++i) {
    // Small range so equal pairs actually occur; salt in extremes.
    v[i] = static_cast<int64_t>(rng() % 7) - 3;
    if (rng() % 31 == 0) {
      v[i] = rng() % 2 ? std::numeric_limits<int64_t>::max()
                       : std::numeric_limits<int64_t>::min();
    }
  }
  return v;
}

/// Arithmetic inputs stay small: the +-* kernels inherit the engine's
/// wrapping-free contract, so the differential must not manufacture signed
/// overflow (UB in the scalar reference).
std::vector<int64_t> RandomSmallI64(size_t n, uint32_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<int64_t> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<int64_t>(rng() % 2001) - 1000;
  }
  return v;
}

std::vector<double> RandomF64(size_t n, uint32_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = (static_cast<double>(rng() % 13) - 6.0) * 0.5;
    if (rng() % 23 == 0) v[i] = std::numeric_limits<double>::quiet_NaN();
    if (rng() % 29 == 0) v[i] = -0.0;
  }
  return v;
}

std::vector<uint8_t> RandomMask(size_t n, uint32_t seed, uint32_t density) {
  std::mt19937_64 rng(seed);
  std::vector<uint8_t> m(n);
  for (size_t i = 0; i < n; ++i) {
    // Deliberately non-canonical set bytes: kernels only test for nonzero.
    m[i] = rng() % 100 < density ? static_cast<uint8_t>(1 + rng() % 255) : 0;
  }
  return m;
}

TEST(SimdDispatchTest, LevelAndRuntimeSwitchAgree) {
  EXPECT_EQ(CompiledLevel(), CALCITE_SIMD_LEVEL);
  if (CompiledLevel() == 0) {
    EXPECT_STREQ(CompiledLevelName(), "scalar");
    SetEnabled(true);
    EXPECT_FALSE(Enabled());  // scalar-only builds cannot enable SIMD
  } else {
    ScopedDispatch off(false);
    EXPECT_FALSE(Enabled());
    {
      ScopedDispatch on(true);
      EXPECT_TRUE(Enabled());
    }
    EXPECT_FALSE(Enabled());
  }
}

TEST(SimdKernelDiffTest, CompareI64MatchesScalar) {
  for (size_t n : kSizes) {
    auto a = RandomI64(n, 1), b = RandomI64(n, 2);
    for (Cmp op : kCmps) {
      std::vector<uint8_t> simd_out(n, 0xee), scalar_out(n, 0xdd);
      {
        ScopedDispatch on(true);
        CmpI64(op, a.data(), b.data(), n, simd_out.data());
      }
      {
        ScopedDispatch off(false);
        CmpI64(op, a.data(), b.data(), n, scalar_out.data());
      }
      ASSERT_EQ(simd_out, scalar_out) << "n=" << n << " op=" << int(op);
      // Outputs must be canonical 0/1 bytes.
      for (uint8_t x : simd_out) ASSERT_LE(x, 1);
      {
        ScopedDispatch on(true);
        CmpI64Lit(op, a.data(), /*lit=*/1, n, simd_out.data());
      }
      {
        ScopedDispatch off(false);
        CmpI64Lit(op, a.data(), /*lit=*/1, n, scalar_out.data());
      }
      ASSERT_EQ(simd_out, scalar_out) << "lit n=" << n << " op=" << int(op);
    }
  }
}

TEST(SimdKernelDiffTest, CompareF64MatchesScalarIncludingNaN) {
  for (size_t n : kSizes) {
    auto a = RandomF64(n, 3), b = RandomF64(n, 4);
    for (Cmp op : kCmps) {
      std::vector<uint8_t> simd_out(n), scalar_out(n);
      {
        ScopedDispatch on(true);
        CmpF64(op, a.data(), b.data(), n, simd_out.data());
      }
      {
        ScopedDispatch off(false);
        CmpF64(op, a.data(), b.data(), n, scalar_out.data());
      }
      ASSERT_EQ(simd_out, scalar_out) << "n=" << n << " op=" << int(op);
      {
        ScopedDispatch on(true);
        CmpF64Lit(op, a.data(), 0.5, n, simd_out.data());
      }
      {
        ScopedDispatch off(false);
        CmpF64Lit(op, a.data(), 0.5, n, scalar_out.data());
      }
      ASSERT_EQ(simd_out, scalar_out) << "n=" << n << " op=" << int(op);
    }
  }
}

// NaN compares "equal" to everything under the engine's three-way ordering.
TEST(SimdKernelDiffTest, NaNComparesEqualUnderBothDispatches) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double a[4] = {nan, 1.0, nan, -2.5};
  const double b[4] = {2.0, nan, nan, -2.5};
  for (bool on : {true, false}) {
    ScopedDispatch d(on);
    uint8_t out[4];
    CmpF64(Cmp::kEq, a, b, 4, out);
    EXPECT_EQ(out[0], 1);
    EXPECT_EQ(out[1], 1);
    EXPECT_EQ(out[2], 1);
    EXPECT_EQ(out[3], 1);
    CmpF64(Cmp::kLt, a, b, 4, out);
    for (uint8_t x : out) EXPECT_EQ(x, 0);
    CmpF64(Cmp::kLe, a, b, 4, out);
    for (uint8_t x : out) EXPECT_EQ(x, 1);
  }
}

TEST(SimdKernelDiffTest, ArithmeticMatchesScalar) {
  for (size_t n : kSizes) {
    auto ai = RandomSmallI64(n, 5), bi = RandomSmallI64(n, 6);
    auto af = RandomF64(n, 7), bf = RandomF64(n, 8);
    for (Arith op : kAriths) {
      std::vector<int64_t> si(n), ci(n);
      std::vector<double> sf(n), cf(n);
      {
        ScopedDispatch on(true);
        ArithI64(op, ai.data(), bi.data(), n, si.data());
        ArithF64(op, af.data(), bf.data(), n, sf.data());
      }
      {
        ScopedDispatch off(false);
        ArithI64(op, ai.data(), bi.data(), n, ci.data());
        ArithF64(op, af.data(), bf.data(), n, cf.data());
      }
      ASSERT_EQ(si, ci) << "n=" << n << " op=" << int(op);
      // NaN != NaN, so compare double results by bit pattern.
      if (n != 0) {
        ASSERT_EQ(0, std::memcmp(sf.data(), cf.data(), n * sizeof(double)))
            << "n=" << n << " op=" << int(op);
      }
    }
    std::vector<double> wi(n), wc(n);
    {
      ScopedDispatch on(true);
      I64ToF64(ai.data(), n, wi.data());
    }
    {
      ScopedDispatch off(false);
      I64ToF64(ai.data(), n, wc.data());
    }
    ASSERT_EQ(wi, wc);
  }
}

TEST(SimdKernelDiffTest, ArithLitMatchesScalarAndBroadcast) {
  for (size_t n : kSizes) {
    auto ai = RandomSmallI64(n, 21);
    auto af = RandomF64(n, 22);
    for (Arith op : kAriths) {
      for (int64_t lit : {int64_t{-7}, int64_t{0}, int64_t{3}}) {
        std::vector<int64_t> so(n), co(n), bc(n);
        {
          ScopedDispatch on(true);
          ArithI64Lit(op, ai.data(), lit, n, so.data());
        }
        {
          ScopedDispatch off(false);
          ArithI64Lit(op, ai.data(), lit, n, co.data());
        }
        ASSERT_EQ(so, co) << "n=" << n << " op=" << int(op) << " lit=" << lit;
        // The literal is always the RIGHT operand (kSub is a[i] - lit):
        // must equal the two-vector kernel against a broadcast array.
        std::vector<int64_t> rhs(n, lit);
        ScopedDispatch off(false);
        ArithI64(op, ai.data(), rhs.data(), n, bc.data());
        ASSERT_EQ(so, bc) << "n=" << n << " op=" << int(op) << " lit=" << lit;
      }
      const double nan = std::numeric_limits<double>::quiet_NaN();
      for (double lit : {-0.5, 0.0, nan}) {
        std::vector<double> so(n), co(n);
        {
          ScopedDispatch on(true);
          ArithF64Lit(op, af.data(), lit, n, so.data());
        }
        {
          ScopedDispatch off(false);
          ArithF64Lit(op, af.data(), lit, n, co.data());
        }
        if (n != 0) {
          ASSERT_EQ(0, std::memcmp(so.data(), co.data(), n * sizeof(double)))
              << "n=" << n << " op=" << int(op) << " lit=" << lit;
        }
      }
    }
  }
}

TEST(SimdKernelDiffTest, AndMasksMatchesScalar) {
  for (size_t n : kSizes) {
    for (uint32_t density : {0u, 20u, 50u, 100u}) {
      // Non-canonical set bytes on both inputs: only zero/nonzero matters.
      auto a = RandomMask(n, 23 + density, density);
      auto b = RandomMask(n, 24 + density, 100 - density);
      std::vector<uint8_t> so(n, 0xee), co(n, 0xdd);
      {
        ScopedDispatch on(true);
        AndMasks(a.data(), b.data(), n, so.data());
      }
      {
        ScopedDispatch off(false);
        AndMasks(a.data(), b.data(), n, co.data());
      }
      ASSERT_EQ(so, co) << "n=" << n << " density=" << density;
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(so[i], (a[i] != 0 && b[i] != 0) ? 1 : 0) << "i=" << i;
      }
    }
  }
}

TEST(SimdKernelDiffTest, InRangeI64MatchesScalarAndComposedCompares) {
  for (size_t n : kSizes) {
    auto v = RandomI64(n, 25);
    for (bool lo_strict : {false, true}) {
      for (bool hi_strict : {false, true}) {
        const int64_t lo = -2, hi = 2;
        std::vector<uint8_t> so(n, 0xee), co(n, 0xdd);
        {
          ScopedDispatch on(true);
          InRangeI64(v.data(), lo, lo_strict, hi, hi_strict, n, so.data());
        }
        {
          ScopedDispatch off(false);
          InRangeI64(v.data(), lo, lo_strict, hi, hi_strict, n, co.data());
        }
        ASSERT_EQ(so, co) << "n=" << n << " strict=" << lo_strict << ","
                          << hi_strict;
        // Equivalent to AND of the two separate literal compares.
        std::vector<uint8_t> lom(n), him(n), both(n);
        ScopedDispatch off(false);
        CmpI64Lit(lo_strict ? Cmp::kGt : Cmp::kGe, v.data(), lo, n,
                  lom.data());
        CmpI64Lit(hi_strict ? Cmp::kLt : Cmp::kLe, v.data(), hi, n,
                  him.data());
        AndMasks(lom.data(), him.data(), n, both.data());
        ASSERT_EQ(so, both) << "n=" << n << " strict=" << lo_strict << ","
                            << hi_strict;
        for (uint8_t x : so) ASSERT_LE(x, 1);
      }
    }
  }
}

// The interval test inherits the engine's NaN-compares-equal ordering: a
// NaN lane passes each inclusive bound (as kGe/kLe do) and fails each
// strict one (as kGt/kLt do) — under both dispatch modes.
TEST(SimdKernelDiffTest, InRangeF64MatchesScalarIncludingNaN) {
  for (size_t n : kSizes) {
    auto v = RandomF64(n, 26);  // salts in NaN and -0.0 lanes
    for (bool lo_strict : {false, true}) {
      for (bool hi_strict : {false, true}) {
        const double lo = -1.5, hi = 1.5;
        std::vector<uint8_t> so(n, 0xee), co(n, 0xdd);
        {
          ScopedDispatch on(true);
          InRangeF64(v.data(), lo, lo_strict, hi, hi_strict, n, so.data());
        }
        {
          ScopedDispatch off(false);
          InRangeF64(v.data(), lo, lo_strict, hi, hi_strict, n, co.data());
        }
        ASSERT_EQ(so, co) << "n=" << n << " strict=" << lo_strict << ","
                          << hi_strict;
        std::vector<uint8_t> lom(n), him(n), both(n);
        ScopedDispatch off(false);
        CmpF64Lit(lo_strict ? Cmp::kGt : Cmp::kGe, v.data(), lo, n,
                  lom.data());
        CmpF64Lit(hi_strict ? Cmp::kLt : Cmp::kLe, v.data(), hi, n,
                  him.data());
        AndMasks(lom.data(), him.data(), n, both.data());
        ASSERT_EQ(so, both) << "n=" << n << " strict=" << lo_strict << ","
                            << hi_strict;
        for (size_t i = 0; i < n; ++i) {
          if (std::isnan(v[i])) {
            ASSERT_EQ(so[i], (!lo_strict && !hi_strict) ? 1 : 0) << "i=" << i;
          }
        }
      }
    }
  }
}

TEST(SimdKernelDiffTest, MaskFoldingMatchesScalar) {
  for (size_t n : kSizes) {
    for (uint32_t density : {0u, 20u, 50u, 100u}) {
      auto a = RandomMask(n, 9 + density, density);
      auto b = RandomMask(n, 10 + density, 100 - density);
      std::vector<uint8_t> so(n), co(n);
      {
        ScopedDispatch on(true);
        OrMasks(a.data(), b.data(), n, so.data());
      }
      {
        ScopedDispatch off(false);
        OrMasks(a.data(), b.data(), n, co.data());
      }
      ASSERT_EQ(so, co) << "or n=" << n;
      for (uint8_t x : so) ASSERT_LE(x, 1);
      {
        ScopedDispatch on(true);
        AndNotMask(a.data(), b.data(), n, so.data());
      }
      {
        ScopedDispatch off(false);
        AndNotMask(a.data(), b.data(), n, co.data());
      }
      ASSERT_EQ(so, co) << "andnot n=" << n;

      auto di = RandomI64(n, 11);
      auto df = RandomF64(n, 12);
      auto du = RandomMask(n, 13, 60);
      auto di2 = di;
      auto df2 = df;
      auto du2 = du;
      {
        ScopedDispatch on(true);
        MaskZeroI64(di.data(), a.data(), n);
        MaskZeroF64(df.data(), a.data(), n);
        MaskZeroU8(du.data(), a.data(), n);
      }
      {
        ScopedDispatch off(false);
        MaskZeroI64(di2.data(), a.data(), n);
        MaskZeroF64(df2.data(), a.data(), n);
        MaskZeroU8(du2.data(), a.data(), n);
      }
      ASSERT_EQ(di, di2);
      if (n != 0) {
        ASSERT_EQ(0, std::memcmp(df.data(), df2.data(), n * sizeof(double)));
      }
      ASSERT_EQ(du, du2);
      for (size_t i = 0; i < n; ++i) {
        if (a[i]) {
          ASSERT_EQ(di[i], 0);
          ASSERT_EQ(df[i], 0.0);
          ASSERT_EQ(du[i], 0);
        }
      }
    }
  }
}

TEST(SimdSelectionTest, MaskToSelMatchesNaiveAtEverySize) {
  for (size_t n : kSizes) {
    for (uint32_t density : {0u, 1u, 35u, 99u, 100u}) {
      auto mask = RandomMask(n, 14 + density, density);
      std::vector<uint32_t> expect;
      for (size_t i = 0; i < n; ++i) {
        if (mask[i]) expect.push_back(static_cast<uint32_t>(i));
      }
      for (bool on : {true, false}) {
        ScopedDispatch d(on);
        std::vector<uint32_t> out(n + kSelSlack, 0xffffffffu);
        size_t count = MaskToSel(mask.data(), n, out.data());
        ASSERT_EQ(count, expect.size()) << "n=" << n << " simd=" << on;
        out.resize(count);
        ASSERT_EQ(out, expect) << "n=" << n << " simd=" << on;
      }
    }
  }
}

TEST(SimdSelectionTest, CompactAndFilterSelWorkInPlace) {
  for (size_t n : kSizes) {
    // A non-identity ascending selection over a 2n-row range.
    std::vector<uint32_t> sel(n);
    for (size_t k = 0; k < n; ++k) sel[k] = static_cast<uint32_t>(2 * k + 1);
    auto positional = RandomMask(n, 15, 40);       // indexed by k
    auto by_row = RandomMask(2 * n + 1, 16, 40);   // indexed by sel[k]
    std::vector<uint32_t> expect_compact, expect_filter;
    for (size_t k = 0; k < n; ++k) {
      if (positional[k]) expect_compact.push_back(sel[k]);
      if (by_row[sel[k]]) expect_filter.push_back(sel[k]);
    }
    for (bool on : {true, false}) {
      ScopedDispatch d(on);
      std::vector<uint32_t> work = sel;  // in place: out aliases sel
      size_t c = CompactSel(positional.data(), work.data(), n, work.data());
      work.resize(c);
      ASSERT_EQ(work, expect_compact) << "n=" << n << " simd=" << on;
      work = sel;
      c = FilterSelByMask(by_row.data(), work.data(), n, work.data());
      work.resize(c);
      ASSERT_EQ(work, expect_filter) << "n=" << n << " simd=" << on;
    }
  }
}

// The cross-representation contract: values that compare equal under the
// engine's numeric semantics (int-vs-double compares as double) must hash
// identically, or the flat group/join tables would split equal keys.
TEST(SimdHashTest, IntAndDoubleImagesAgree) {
  const int64_t probes[] = {0,       1,          -1,         42,
                            -37,     1 << 20,    -(1 << 20), kExactIntBound - 1,
                            -(kExactIntBound - 1)};
  for (int64_t v : probes) {
    EXPECT_EQ(HashI64One(v), HashF64One(static_cast<double>(v))) << v;
  }
  // ±0.0 compare equal and must agree.
  EXPECT_EQ(HashF64One(0.0), HashF64One(-0.0));
  EXPECT_EQ(HashF64One(0.0), HashI64One(0));
  // Beyond 2^53 the double image conflates neighbors: Int(2^53) and
  // Int(2^53 + 1) both equal Double(9007199254740992.0), so all three must
  // share one hash.
  EXPECT_EQ(HashI64One(kExactIntBound), HashF64One(9007199254740992.0));
  EXPECT_EQ(HashI64One(kExactIntBound + 1), HashI64One(kExactIntBound));
  // Fractions and non-finites take the bit-pattern path and still self-agree.
  EXPECT_EQ(HashF64One(2.5), HashF64One(2.5));
  EXPECT_NE(HashF64One(2.5), HashF64One(2.0));
}

TEST(SimdHashTest, BlockedHashMatchesOneCellHash) {
  for (size_t n : kSizes) {
    auto vi = RandomI64(n, 17);
    // Salt in boundary values so vector blocks mix in-range and out-of-range
    // lanes (the AVX2 path falls back per 4-lane block).
    for (size_t i = 0; i < n; ++i) {
      if (i % 5 == 3) vi[i] = kExactIntBound + static_cast<int64_t>(i);
      if (i % 7 == 4) vi[i] = -kExactIntBound - static_cast<int64_t>(i);
    }
    auto vf = RandomF64(n, 18);
    for (bool on : {true, false}) {
      ScopedDispatch d(on);
      std::vector<uint64_t> hi(n), hf(n);
      HashI64(vi.data(), n, hi.data());
      HashF64(vf.data(), n, hf.data());
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hi[i], HashI64One(vi[i])) << "i=" << i << " simd=" << on;
        ASSERT_EQ(hf[i], HashF64One(vf[i])) << "i=" << i << " simd=" << on;
      }
    }
  }
}

}  // namespace
}  // namespace simd
}  // namespace calcite
