#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "adapters/cassandra/cassandra_adapter.h"
#include "adapters/csv/csv_adapter.h"
#include "adapters/jdbc/jdbc_adapter.h"
#include "adapters/mongo/mongo_adapter.h"
#include "adapters/spark/spark_adapter.h"
#include "adapters/splunk/splunk_adapter.h"
#include "rel/rel_writer.h"
#include "schema/model.h"
#include "test_schema.h"
#include "tools/frameworks.h"

namespace calcite {
namespace {

TypeFactory tf;

// ----------------------------- Figure 2 setup ------------------------------

/// Builds the Figure 2 catalog: an Orders stream-ish event table in Splunk
/// and a Products table in a MySQL-dialect JDBC backend that Splunk can
/// reach via lookups.
struct Figure2Catalog {
  SchemaPtr root;
  RemoteSqlEnginePtr mysql;
};

Figure2Catalog MakeFigure2Catalog() {
  auto int_t = tf.CreateSqlType(SqlTypeName::kInteger);
  auto str_t = tf.CreateSqlType(SqlTypeName::kVarchar, 32);

  // The MySQL backend with the Products table.
  auto mysql_tables = std::make_shared<Schema>();
  {
    auto row = tf.CreateStructType({"productId", "name", "price"},
                                   {int_t, str_t, int_t});
    std::vector<Row> rows;
    for (int i = 1; i <= 20; ++i) {
      rows.push_back({Value::Int(i), Value::String("product-" + std::to_string(i)),
                      Value::Int(i * 10)});
    }
    auto table = std::make_shared<MemTable>(row, std::move(rows));
    Statistic stat;
    stat.row_count = 20;
    stat.unique_keys = {{0}};
    table->set_statistic(stat);
    mysql_tables->AddTable("products", table);
  }
  auto mysql = std::make_shared<RemoteSqlEngine>("mysql", SqlDialect::MySql(),
                                                 mysql_tables);

  // The Splunk engine with the Orders events.
  auto splunk = std::make_shared<SplunkSchema>(
      std::vector<RemoteSqlEnginePtr>{mysql});
  {
    auto row = tf.CreateStructType({"rowtime", "productId", "units"},
                                   {int_t, int_t, int_t});
    std::vector<Row> rows;
    for (int i = 0; i < 200; ++i) {
      rows.push_back({Value::Int(1000 + i), Value::Int(i % 20 + 1),
                      Value::Int(i % 40)});
    }
    splunk->AddTable("orders", std::make_shared<MemTable>(row, std::move(rows)));
  }

  auto root = std::make_shared<Schema>();
  root->AddSubSchema("splunk", splunk);
  root->AddSubSchema("mysql", std::make_shared<JdbcSchema>(mysql));
  return {root, mysql};
}

TEST(Figure2Test, JoinMigratesIntoSplunkConvention) {
  Figure2Catalog catalog = MakeFigure2Catalog();
  Connection::Config config{catalog.root};
  config.extra_rules = SparkAdapter::Rules(
      {SplunkSchema::SplunkConvention(),
       std::dynamic_pointer_cast<JdbcSchema>(
           catalog.root->GetSubSchema("mysql"))
           ->ScanConvention()});
  Connection conn(config);

  const std::string query =
      "SELECT p.name, o.units FROM splunk.orders o "
      "JOIN mysql.products p ON o.productId = p.productId "
      "WHERE o.units > 25";

  auto plan = conn.Explain(query, /*optimized=*/true, /*include_traits=*/true);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // The paper's efficient implementation: the filter is pushed into splunk
  // and the join runs in the splunk convention via remote lookups.
  EXPECT_NE(plan.value().find("SplunkLookupJoin"), std::string::npos)
      << plan.value();
  EXPECT_NE(plan.value().find("SplunkFilter"), std::string::npos)
      << plan.value();

  catalog.mysql->ClearLog();
  auto result = conn.Query(query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // units > 25 keeps units in 26..39: 14 of 40 slots, 5 full cycles = 70.
  EXPECT_EQ(result.value().rows.size(), 70u);
  // The join must have reached MySQL through per-key lookups, not a bulk
  // table transfer.
  EXPECT_FALSE(catalog.mysql->statement_log().empty());
  for (const std::string& sql : catalog.mysql->statement_log()) {
    EXPECT_NE(sql.find("WHERE"), std::string::npos) << sql;
  }
}

TEST(Figure2Test, ResultsMatchPureEnumerableExecution) {
  Figure2Catalog catalog = MakeFigure2Catalog();
  const std::string query =
      "SELECT p.name, o.units FROM splunk.orders o "
      "JOIN mysql.products p ON o.productId = p.productId "
      "WHERE o.units > 25 ORDER BY o.units, p.name";

  Connection with_adapters{Connection::Config{catalog.root}};
  auto fast = with_adapters.Query(query);
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();

  // Reference: the same data in plain in-memory tables.
  auto reference_schema = std::make_shared<Schema>();
  auto splunk = catalog.root->GetSubSchema("splunk");
  reference_schema->AddTable("orders", splunk->GetTable("orders"));
  reference_schema->AddTable(
      "products", catalog.mysql->tables()->GetTable("products"));
  Connection reference{Connection::Config{reference_schema}};
  auto expected = reference.Query(
      "SELECT p.name, o.units FROM orders o "
      "JOIN products p ON o.productId = p.productId "
      "WHERE o.units > 25 ORDER BY o.units, p.name");
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  ASSERT_EQ(fast.value().rows.size(), expected.value().rows.size());
  for (size_t i = 0; i < fast.value().rows.size(); ++i) {
    EXPECT_EQ(RowToString(fast.value().rows[i]),
              RowToString(expected.value().rows[i]));
  }
}

// ------------------------------- Cassandra ---------------------------------

SchemaPtr MakeCassandraCatalog() {
  auto int_t = tf.CreateSqlType(SqlTypeName::kInteger);
  auto str_t = tf.CreateSqlType(SqlTypeName::kVarchar, 32);
  auto row = tf.CreateStructType({"deptno", "salary", "name"},
                                 {int_t, int_t, str_t});
  std::vector<Row> rows;
  for (int i = 0; i < 60; ++i) {
    rows.push_back({Value::Int(i % 3 * 10 + 10), Value::Int(9999 - i * 7),
                    Value::String("e" + std::to_string(i))});
  }
  // Partitioned by deptno; rows sorted by salary within each partition.
  auto table = std::make_shared<CassandraTable>(
      row, std::move(rows), std::vector<int>{0},
      RelCollation::Of({1}));
  auto cass = std::make_shared<CassandraSchema>();
  cass->AddTable("emps", table);
  auto root = std::make_shared<Schema>();
  root->AddSubSchema("cass", cass);
  return root;
}

TEST(CassandraTest, SortPushedDownWhenBothPreconditionsHold) {
  Connection conn{Connection::Config{MakeCassandraCatalog()}};
  // Single-partition filter + sort matching the clustering order.
  auto plan = conn.Explain(
      "SELECT * FROM cass.emps WHERE deptno = 10 ORDER BY salary", true);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan.value().find("CassandraSort"), std::string::npos)
      << plan.value();
  EXPECT_EQ(plan.value().find("EnumerableSort"), std::string::npos)
      << plan.value();

  auto rows = conn.Query(
      "SELECT * FROM cass.emps WHERE deptno = 10 ORDER BY salary");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows.value().rows.size(), 20u);
  for (size_t i = 1; i < rows.value().rows.size(); ++i) {
    EXPECT_LE(rows.value().rows[i - 1][1].AsInt(),
              rows.value().rows[i][1].AsInt());
  }
}

TEST(CassandraTest, NoPushdownWithoutPartitionFilter) {
  // Precondition (1) violated: no single-partition filter.
  Connection conn{Connection::Config{MakeCassandraCatalog()}};
  auto plan = conn.Explain("SELECT * FROM cass.emps ORDER BY salary", true);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan.value().find("CassandraSort"), std::string::npos)
      << plan.value();
  EXPECT_NE(plan.value().find("EnumerableSort"), std::string::npos)
      << plan.value();
}

TEST(CassandraTest, NoPushdownForIncompatibleCollation) {
  // Precondition (2) violated: sort on a non-clustering column.
  Connection conn{Connection::Config{MakeCassandraCatalog()}};
  auto plan = conn.Explain(
      "SELECT * FROM cass.emps WHERE deptno = 10 ORDER BY name", true);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan.value().find("CassandraSort"), std::string::npos)
      << plan.value();
  EXPECT_NE(plan.value().find("EnumerableSort"), std::string::npos)
      << plan.value();
}

TEST(CassandraTest, GeneratesCql) {
  Connection conn{Connection::Config{MakeCassandraCatalog()}};
  auto logical = conn.ParseQuery(
      "SELECT * FROM cass.emps WHERE deptno = 10 ORDER BY salary");
  ASSERT_TRUE(logical.ok());
  auto physical = conn.OptimizePlan(logical.value());
  ASSERT_TRUE(physical.ok()) << physical.status().ToString();
  // Locate the cassandra subtree under the interpreter.
  RelNodePtr node = physical.value();
  while (node != nullptr &&
         node->convention() != CassandraSchema::CassandraConvention()) {
    node = node->num_inputs() > 0 ? node->input(0) : nullptr;
  }
  ASSERT_NE(node, nullptr);
  auto cql = CassandraGenerateCql(node);
  ASSERT_TRUE(cql.ok()) << cql.status().ToString();
  EXPECT_NE(cql.value().find("SELECT * FROM emps WHERE deptno = 10"),
            std::string::npos)
      << cql.value();
  EXPECT_NE(cql.value().find("ORDER BY salary"), std::string::npos)
      << cql.value();
}

// --------------------------------- Mongo -----------------------------------

SchemaPtr MakeMongoCatalog() {
  std::vector<JsonValue> docs;
  const char* zips[] = {
      R"({"city": "AMSTERDAM", "pop": 821752, "loc": [4.9, 52.37]})",
      R"({"city": "ROTTERDAM", "pop": 623652, "loc": [4.47, 51.92]})",
      R"({"city": "UTRECHT", "pop": 345080, "loc": [5.12, 52.09]})",
  };
  for (const char* text : zips) {
    auto doc = ParseJson(text);
    docs.push_back(doc.value());
  }
  auto mongo = std::make_shared<MongoSchema>();
  mongo->AddTable("zips", std::make_shared<MongoTable>(std::move(docs)));
  // The §7.1 view exposing documents relationally.
  TypeFactory local_tf;
  mongo->AddTable(
      "zips_relational",
      std::make_shared<ViewTable>(
          "SELECT CAST(_MAP['city'] AS VARCHAR(20)) AS city, "
          "CAST(_MAP['loc'][0] AS FLOAT) AS longitude, "
          "CAST(_MAP['loc'][1] AS FLOAT) AS latitude, "
          "CAST(_MAP['pop'] AS INTEGER) AS pop "
          "FROM mongo.zips",
          local_tf.CreateStructType({}, {})));
  auto root = std::make_shared<Schema>();
  root->AddSubSchema("mongo", mongo);
  return root;
}

TEST(MongoTest, MapColumnAndItemOperator) {
  Connection conn{Connection::Config{MakeMongoCatalog()}};
  auto result = conn.Query(
      "SELECT CAST(_MAP['city'] AS VARCHAR(20)) AS city FROM mongo.zips "
      "ORDER BY city");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().rows.size(), 3u);
  EXPECT_EQ(result.value().rows[0][0].AsString(), "AMSTERDAM");
}

TEST(MongoTest, ViewExposesDocumentsRelationally) {
  Connection conn{Connection::Config{MakeMongoCatalog()}};
  auto result = conn.Query(
      "SELECT city, pop FROM mongo.zips_relational WHERE pop > 400000 "
      "ORDER BY pop DESC");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().rows.size(), 2u);
  EXPECT_EQ(result.value().rows[0][0].AsString(), "AMSTERDAM");
  EXPECT_EQ(result.value().rows[1][0].AsString(), "ROTTERDAM");
}

TEST(MongoTest, FilterPushdownGeneratesFindQuery) {
  Connection conn{Connection::Config{MakeMongoCatalog()}};
  auto logical =
      conn.ParseQuery("SELECT * FROM mongo.zips WHERE _MAP['city'] = "
                      "'AMSTERDAM'");
  ASSERT_TRUE(logical.ok()) << logical.status().ToString();
  auto physical = conn.OptimizePlan(logical.value());
  ASSERT_TRUE(physical.ok()) << physical.status().ToString();
  std::string plan = ExplainPlan(physical.value());
  EXPECT_NE(plan.find("MongoFilter"), std::string::npos) << plan;

  RelNodePtr node = physical.value();
  while (node != nullptr &&
         dynamic_cast<const MongoFilter*>(node.get()) == nullptr) {
    node = node->num_inputs() > 0 ? node->input(0) : nullptr;
  }
  ASSERT_NE(node, nullptr);
  auto find = MongoGenerateQuery(node);
  ASSERT_TRUE(find.ok());
  EXPECT_EQ(find.value(), "db.zips.find({\"city\":\"AMSTERDAM\"})");
}

// ---------------------------------- JDBC -----------------------------------

TEST(JdbcTest, WholeQueryPushdown) {
  Figure2Catalog catalog = MakeFigure2Catalog();
  Connection conn{Connection::Config{catalog.root}};
  catalog.mysql->ClearLog();
  auto result = conn.Query(
      "SELECT name FROM mysql.products WHERE price > 150 ORDER BY name");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().rows.size(), 5u);
  // Exactly one SQL statement shipped, containing the filter (and rendered
  // in the MySQL dialect with backtick quoting).
  ASSERT_EQ(catalog.mysql->statement_log().size(), 1u);
  const std::string& sql = catalog.mysql->statement_log()[0];
  EXPECT_NE(sql.find("WHERE"), std::string::npos) << sql;
  EXPECT_NE(sql.find('`'), std::string::npos) << sql;
}

TEST(JdbcTest, AggregatePushdown) {
  Figure2Catalog catalog = MakeFigure2Catalog();
  Connection conn{Connection::Config{catalog.root}};
  catalog.mysql->ClearLog();
  auto result = conn.Query(
      "SELECT COUNT(*) AS c FROM mysql.products WHERE price >= 100");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().rows.size(), 1u);
  EXPECT_EQ(result.value().rows[0][0].AsInt(), 11);
  ASSERT_EQ(catalog.mysql->statement_log().size(), 1u);
  EXPECT_NE(catalog.mysql->statement_log()[0].find("COUNT"),
            std::string::npos);
}

// ------------------------------- CSV / model -------------------------------

TEST(CsvTest, ParseAndQuery) {
  auto table = CsvTable::FromText(
      "empno:int,name:string,sal:double\n"
      "100,Fred,5000.5\n"
      "110,Eric,8000\n"
      "120,Wilma,9000\n");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  auto schema = std::make_shared<Schema>();
  schema->AddTable("emps_csv", table.value());
  Connection conn{Connection::Config{schema}};
  auto result =
      conn.Query("SELECT name FROM emps_csv WHERE sal > 6000 ORDER BY name");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().rows.size(), 2u);
  EXPECT_EQ(result.value().rows[0][0].AsString(), "Eric");
}

TEST(CsvTest, ModelFileLoadsDirectory) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "calcite_csv_test";
  fs::create_directories(dir);
  {
    std::ofstream out(dir / "depts.csv");
    out << "deptno:int,dname:string\n10,Sales\n20,Marketing\n";
  }
  std::string model = R"({
    "defaultSchema": "files",
    "schemas": [
      {"name": "files", "factory": "csv",
       "operand": {"directory": ")" + dir.string() + R"("}}
    ]
  })";
  auto schema = LoadModel(model);
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  Connection conn{Connection::Config{schema.value()}};
  auto result = conn.Query("SELECT dname FROM files.depts WHERE deptno = 20");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().rows.size(), 1u);
  EXPECT_EQ(result.value().rows[0][0].AsString(), "Marketing");
  fs::remove_all(dir);
}

TEST(CsvTest, BadHeaderIsError) {
  auto table = CsvTable::FromText("empno\n100\n");
  EXPECT_FALSE(table.ok());
}

// ------------------------------ SPL generation ------------------------------

TEST(SplunkTest, GeneratesSpl) {
  Figure2Catalog catalog = MakeFigure2Catalog();
  Connection conn{Connection::Config{catalog.root}};
  auto logical = conn.ParseQuery(
      "SELECT * FROM splunk.orders WHERE units > 25");
  ASSERT_TRUE(logical.ok());
  auto physical = conn.OptimizePlan(logical.value());
  ASSERT_TRUE(physical.ok()) << physical.status().ToString();
  RelNodePtr node = physical.value();
  while (node != nullptr &&
         node->convention() != SplunkSchema::SplunkConvention()) {
    node = node->num_inputs() > 0 ? node->input(0) : nullptr;
  }
  ASSERT_NE(node, nullptr);
  auto spl = SplunkGenerateSpl(node);
  ASSERT_TRUE(spl.ok()) << spl.status().ToString();
  EXPECT_EQ(spl.value(), "search index=orders | search units>25");
}

}  // namespace
}  // namespace calcite
