// Tests of the ANALYZE statistics pipeline (schema/analyze.h), the
// histogram-backed selectivity estimator (schema/table_stats.h), the
// stats-backed metadata provider (metadata/table_stats_provider.h), the
// unified ScanSpec scan surface (Table::OpenScan decorators), and the
// DiskTable side: stats catalog persistence across reopen and cost-based
// access-path selection under AccessPath::kAuto.
//
// Distribution tests use seeded generators, so the asserted accuracy
// bounds are deterministic, not flaky tolerances.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "metadata/metadata.h"
#include "rel/core.h"
#include "rex/rex_builder.h"
#include "schema/analyze.h"
#include "schema/table.h"
#include "schema/table_stats.h"
#include "storage/disk_table.h"
#include "type/rel_data_type.h"
#include "type/value.h"

namespace calcite {
namespace {

#define ASSERT_OK(expr)                                 \
  do {                                                  \
    const ::calcite::Status _st = (expr);               \
    ASSERT_TRUE(_st.ok()) << _st.message();             \
  } while (0)

// Row type shared by the MemTable tests: an int64 key, a nullable double
// measure, and a nullable varchar category.
RelDataTypePtr StatsRowType(const TypeFactory& tf) {
  auto int_t = tf.CreateSqlType(SqlTypeName::kInteger);
  auto dbl_null = tf.CreateSqlType(SqlTypeName::kDouble, -1, true);
  auto str_null = tf.CreateSqlType(SqlTypeName::kVarchar, 20, true);
  return tf.CreateStructType({"id", "val", "cat"}, {int_t, dbl_null, str_null});
}

ScanPredicate Pred(ScanPredicate::Kind kind, int column, Value literal) {
  ScanPredicate p;
  p.kind = kind;
  p.column = column;
  p.literal = std::move(literal);
  return p;
}

std::vector<Row> Drain(const RowBatchPuller& puller) {
  std::vector<Row> out;
  for (;;) {
    auto batch = puller();
    EXPECT_TRUE(batch.ok()) << batch.status().message();
    if (!batch.ok() || batch->empty()) break;
    for (Row& row : *batch) out.push_back(std::move(row));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Estimator accuracy: uniform data
// ---------------------------------------------------------------------------

TEST(StatsAnalyzeTest, UniformColumnEstimates) {
  const int64_t kRows = 10000;
  TypeFactory tf;
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> uni(0.0, 100.0);
  std::vector<Row> rows;
  rows.reserve(kRows);
  for (int64_t i = 0; i < kRows; ++i) {
    rows.push_back({Value::Int(i), Value::Double(uni(rng)),
                    Value::String("c" + std::to_string(i % 7))});
  }
  MemTable table(StatsRowType(tf), std::move(rows));

  auto stats = AnalyzeTable(table);
  ASSERT_OK(stats.status());
  EXPECT_TRUE(stats->analyzed());
  EXPECT_EQ(stats->version, TableStats::kFormatVersion);
  ASSERT_EQ(stats->columns.size(), 3u);
  ASSERT_TRUE(stats->row_count.has_value());
  EXPECT_DOUBLE_EQ(*stats->row_count, static_cast<double>(kRows));

  // Key column: exact extremes, no NULLs, all-distinct NDV within KMV
  // sketch error (~1/sqrt(1024) ~ 3%; assert 15%).
  const ColumnStats& id = stats->columns[0];
  EXPECT_TRUE(id.analyzed);
  EXPECT_EQ(id.min.AsInt(), 0);
  EXPECT_EQ(id.max.AsInt(), kRows - 1);
  EXPECT_DOUBLE_EQ(id.null_fraction, 0.0);
  EXPECT_NEAR(id.ndv, static_cast<double>(kRows), 0.15 * kRows);
  EXPECT_FALSE(id.histogram.empty());

  // Range selectivity on the uniform key: $0 < 2500 selects 25%.
  auto lt = EstimatePredicateSelectivity(
      id, Pred(ScanPredicate::Kind::kLessThan, 0, Value::Int(2500)));
  ASSERT_TRUE(lt.has_value());
  EXPECT_NEAR(*lt, 0.25, 0.03);

  // Equality on an all-distinct column: ~1/kRows, not the 0.15 default.
  auto eq = EstimatePredicateSelectivity(
      id, Pred(ScanPredicate::Kind::kEquals, 0, Value::Int(1234)));
  ASSERT_TRUE(eq.has_value());
  EXPECT_GT(*eq, 0.5 / kRows);
  EXPECT_LT(*eq, 5.0 / kRows);

  // Equality outside [min, max] is provably empty.
  auto out = EstimatePredicateSelectivity(
      id, Pred(ScanPredicate::Kind::kEquals, 0, Value::Int(kRows * 2)));
  ASSERT_TRUE(out.has_value());
  EXPECT_DOUBLE_EQ(*out, 0.0);

  // The uniform double measure: $1 < 25.0 selects ~25%.
  const ColumnStats& val = stats->columns[1];
  auto vlt = EstimatePredicateSelectivity(
      val, Pred(ScanPredicate::Kind::kLessThan, 1, Value::Double(25.0)));
  ASSERT_TRUE(vlt.has_value());
  EXPECT_NEAR(*vlt, 0.25, 0.03);

  // Low-cardinality varchar column: NDV counted exactly, no histogram.
  const ColumnStats& cat = stats->columns[2];
  EXPECT_DOUBLE_EQ(cat.ndv, 7.0);
  EXPECT_TRUE(cat.histogram.empty());
  EXPECT_EQ(cat.min.AsString(), "c0");
  EXPECT_EQ(cat.max.AsString(), "c6");
}

// ---------------------------------------------------------------------------
// Estimator accuracy: skewed data
// ---------------------------------------------------------------------------

TEST(StatsAnalyzeTest, SkewedColumnHistogramBeatsUniformAssumption) {
  // v = 100 * u^4 with u uniform in [0,1): heavily right-skewed, mass near
  // zero. True P(v < t) = (t/100)^(1/4).
  const int64_t kRows = 20000;
  TypeFactory tf;
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::vector<Row> rows;
  rows.reserve(kRows);
  for (int64_t i = 0; i < kRows; ++i) {
    double u = uni(rng);
    rows.push_back({Value::Int(i), Value::Double(100.0 * u * u * u * u),
                    Value::Null()});
  }
  MemTable table(StatsRowType(tf), std::move(rows));

  auto stats = AnalyzeTable(table);
  ASSERT_OK(stats.status());
  const ColumnStats& val = stats->columns[1];
  ASSERT_FALSE(val.histogram.empty());

  // P(v < 6.25) = 0.5 — a uniform assumption over [0, 100] would say ~6%.
  auto median = EstimatePredicateSelectivity(
      val, Pred(ScanPredicate::Kind::kLessThan, 1, Value::Double(6.25)));
  ASSERT_TRUE(median.has_value());
  EXPECT_NEAR(*median, 0.5, 0.06);

  // P(v < 31.6) ~ 0.75.
  auto q3 = EstimatePredicateSelectivity(
      val, Pred(ScanPredicate::Kind::kLessThan, 1, Value::Double(31.64)));
  ASSERT_TRUE(q3.has_value());
  EXPECT_NEAR(*q3, 0.75, 0.06);

  // And the complementary range: P(v > 6.25) ~ 0.5.
  auto gt = EstimatePredicateSelectivity(
      val, Pred(ScanPredicate::Kind::kGreaterThan, 1, Value::Double(6.25)));
  ASSERT_TRUE(gt.has_value());
  EXPECT_NEAR(*gt, 0.5, 0.06);
}

// ---------------------------------------------------------------------------
// Estimator accuracy: NULL-heavy data
// ---------------------------------------------------------------------------

TEST(StatsAnalyzeTest, NullHeavyColumnEstimates) {
  const int64_t kRows = 10000;
  TypeFactory tf;
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::vector<Row> rows;
  rows.reserve(kRows);
  int64_t nulls = 0;
  for (int64_t i = 0; i < kRows; ++i) {
    bool is_null = uni(rng) < 0.7;
    nulls += is_null ? 1 : 0;
    rows.push_back({Value::Int(i),
                    is_null ? Value::Null() : Value::Double(uni(rng) * 10.0),
                    Value::Null()});
  }
  MemTable table(StatsRowType(tf), std::move(rows));

  auto stats = AnalyzeTable(table);
  ASSERT_OK(stats.status());
  const ColumnStats& val = stats->columns[1];
  // Full scan: the NULL fraction is exact.
  EXPECT_DOUBLE_EQ(val.null_fraction,
                   static_cast<double>(nulls) / static_cast<double>(kRows));

  auto is_null = EstimatePredicateSelectivity(
      val, Pred(ScanPredicate::Kind::kIsNull, 1, Value::Null()));
  ASSERT_TRUE(is_null.has_value());
  EXPECT_NEAR(*is_null, 0.7, 0.02);

  auto not_null = EstimatePredicateSelectivity(
      val, Pred(ScanPredicate::Kind::kIsNotNull, 1, Value::Null()));
  ASSERT_TRUE(not_null.has_value());
  EXPECT_NEAR(*not_null, 0.3, 0.02);

  // Comparisons never match NULL rows: $1 < 5.0 matches ~half of the
  // non-NULL 30%, i.e. ~15% of all rows.
  auto lt = EstimatePredicateSelectivity(
      val, Pred(ScanPredicate::Kind::kLessThan, 1, Value::Double(5.0)));
  ASSERT_TRUE(lt.has_value());
  EXPECT_NEAR(*lt, 0.15, 0.03);

  // A comparison against a NULL literal never passes.
  auto null_lit = EstimatePredicateSelectivity(
      val, Pred(ScanPredicate::Kind::kLessThan, 1, Value::Null()));
  ASSERT_TRUE(null_lit.has_value());
  EXPECT_DOUBLE_EQ(*null_lit, 0.0);

  // An all-NULL column: extremes stay NULL, NDV 0, IS NULL -> 1.
  const ColumnStats& cat = stats->columns[2];
  EXPECT_TRUE(cat.min.IsNull());
  EXPECT_TRUE(cat.max.IsNull());
  EXPECT_DOUBLE_EQ(cat.null_fraction, 1.0);
  EXPECT_DOUBLE_EQ(cat.ndv, 0.0);
}

// ---------------------------------------------------------------------------
// Sampled ANALYZE
// ---------------------------------------------------------------------------

TEST(StatsAnalyzeTest, SampledAnalyzeScalesEstimates) {
  const int64_t kRows = 20000;
  TypeFactory tf;
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::vector<Row> rows;
  rows.reserve(kRows);
  for (int64_t i = 0; i < kRows; ++i) {
    rows.push_back({Value::Int(i),
                    uni(rng) < 0.25 ? Value::Null()
                                    : Value::Double(uni(rng) * 50.0),
                    Value::String("c" + std::to_string(i % 11))});
  }
  MemTable table(StatsRowType(tf), std::move(rows));

  AnalyzeOptions opts;
  opts.sample_fraction = 0.1;
  auto stats = AnalyzeTable(table, opts);
  ASSERT_OK(stats.status());
  ASSERT_TRUE(stats->row_count.has_value());
  // Bernoulli(0.1) over 20k rows: the scaled row count lands within a few
  // percent; assert a generous 20%.
  EXPECT_NEAR(*stats->row_count, static_cast<double>(kRows), 0.2 * kRows);

  const ColumnStats& val = stats->columns[1];
  EXPECT_NEAR(val.null_fraction, 0.25, 0.05);
  auto lt = EstimatePredicateSelectivity(
      val, Pred(ScanPredicate::Kind::kLessThan, 1, Value::Double(25.0)));
  ASSERT_TRUE(lt.has_value());
  EXPECT_NEAR(*lt, 0.375, 0.05);  // half of the non-NULL 75%

  // The all-distinct key column: NDV scaled back to the population within
  // 30% (sampling multiplies the sketch error).
  EXPECT_NEAR(stats->columns[0].ndv, static_cast<double>(kRows), 0.3 * kRows);

  // Low-cardinality column: every distinct value shows up in a 10% sample,
  // and the birthday-style inversion recognizes saturation.
  EXPECT_NEAR(stats->columns[2].ndv, 11.0, 2.0);
}

// ---------------------------------------------------------------------------
// ScanSpec decorators through the default Table::OpenScan
// ---------------------------------------------------------------------------

TEST(ScanSpecTest, ProjectionAndPredicates) {
  const int64_t kRows = 1000;
  TypeFactory tf;
  std::vector<Row> rows;
  for (int64_t i = 0; i < kRows; ++i) {
    rows.push_back({Value::Int(i), Value::Double(i * 0.5),
                    Value::String("c" + std::to_string(i % 3))});
  }
  MemTable table(StatsRowType(tf), std::move(rows));

  ScanSpec spec;
  spec.batch_size = 128;
  spec.predicates = {Pred(ScanPredicate::Kind::kLessThan, 0, Value::Int(100))};
  spec.projection = {2, 0};
  auto puller = table.OpenScan(spec);
  ASSERT_OK(puller.status());
  std::vector<Row> got = Drain(*puller);
  ASSERT_EQ(got.size(), 100u);
  for (const Row& row : got) {
    ASSERT_EQ(row.size(), 2u);  // projected down to {cat, id}
    EXPECT_TRUE(row[0].is_string());
    EXPECT_LT(row[1].AsInt(), 100);
  }
}

TEST(ScanSpecTest, SamplingIsDeterministicAndBounded) {
  const int64_t kRows = 10000;
  TypeFactory tf;
  std::vector<Row> rows;
  for (int64_t i = 0; i < kRows; ++i) {
    rows.push_back({Value::Int(i), Value::Double(0.0), Value::Null()});
  }
  MemTable table(StatsRowType(tf), std::move(rows));

  ScanSpec spec;
  spec.sample_fraction = 0.5;
  auto a = table.OpenScan(spec);
  ASSERT_OK(a.status());
  std::vector<Row> first = Drain(*a);
  EXPECT_NEAR(static_cast<double>(first.size()), 5000.0, 500.0);

  // Same seed -> identical sample; different seed -> (almost surely) not.
  auto b = table.OpenScan(spec);
  ASSERT_OK(b.status());
  std::vector<Row> second = Drain(*b);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i][0].AsInt(), second[i][0].AsInt());
  }

  spec.sample_seed = 0xBADC0FFEEull;
  auto c = table.OpenScan(spec);
  ASSERT_OK(c.status());
  std::vector<Row> third = Drain(*c);
  bool identical = third.size() == first.size();
  if (identical) {
    for (size_t i = 0; i < first.size(); ++i) {
      if (first[i][0].AsInt() != third[i][0].AsInt()) {
        identical = false;
        break;
      }
    }
  }
  EXPECT_FALSE(identical);
}

TEST(ScanSpecTest, UnitRangeRequiresPagedSurface) {
  TypeFactory tf;
  MemTable table(StatsRowType(tf),
                 {{Value::Int(1), Value::Null(), Value::Null()}});
  ScanSpec spec;
  spec.unit_begin = 0;
  spec.unit_end = 1;
  auto puller = table.OpenScan(spec);
  EXPECT_FALSE(puller.ok());  // MemTable exposes no scan units
}

// ---------------------------------------------------------------------------
// Stats-backed metadata provider
// ---------------------------------------------------------------------------

TEST(TableStatsProviderTest, SelectivityFromHistograms) {
  const int64_t kRows = 10000;
  TypeFactory tf;
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> uni(0.0, 100.0);
  std::vector<Row> rows;
  rows.reserve(kRows);
  for (int64_t i = 0; i < kRows; ++i) {
    rows.push_back({Value::Int(i), Value::Double(uni(rng)),
                    Value::String("c" + std::to_string(i % 7))});
  }
  auto table = std::make_shared<MemTable>(StatsRowType(tf), std::move(rows));
  auto stats = AnalyzeTable(*table);
  ASSERT_OK(stats.status());
  table->set_statistic(*stats);

  RelNodePtr scan =
      LogicalTableScan::Create(table, {"t"}, Convention::Enumerable(), tf);
  RelDataTypePtr row_type = table->GetRowType(tf);
  RexBuilder b(tf);

  MetadataQuery mq;

  // $1 < 25.0: the histogram says ~0.25; the default guess would be 0.5.
  auto lt = b.MakeCall(OpKind::kLessThan, {b.MakeInputRef(row_type, 1),
                                           b.MakeDoubleLiteral(25.0)});
  ASSERT_OK(lt.status());
  EXPECT_NEAR(mq.Selectivity(scan, *lt), 0.25, 0.03);

  // Equality on the all-distinct key: ~1e-4, not the 0.15 default.
  auto eq = b.MakeCall(OpKind::kEquals, {b.MakeInputRef(row_type, 0),
                                         b.MakeIntLiteral(4242)});
  ASSERT_OK(eq.status());
  EXPECT_LT(mq.Selectivity(scan, *eq), 0.01);

  // Conjunction: $0 < 1000 (0.1) AND $1 < 25.0 (0.25) -> ~0.025 under
  // independence.
  auto key_lt = b.MakeCall(OpKind::kLessThan, {b.MakeInputRef(row_type, 0),
                                               b.MakeIntLiteral(1000)});
  ASSERT_OK(key_lt.status());
  RexNodePtr conj = b.MakeAnd({*key_lt, *lt});
  double sel = mq.Selectivity(scan, conj);
  EXPECT_GT(sel, 0.012);
  EXPECT_LT(sel, 0.04);

  // The same scan shape without stats falls back to the fixed guesses.
  auto bare = std::make_shared<MemTable>(StatsRowType(tf), std::vector<Row>{});
  RelNodePtr bare_scan =
      LogicalTableScan::Create(bare, {"u"}, Convention::Enumerable(), tf);
  EXPECT_DOUBLE_EQ(mq.Selectivity(bare_scan, *lt), 0.5);
  EXPECT_DOUBLE_EQ(mq.Selectivity(bare_scan, *eq), 0.15);
}

TEST(TableStatsProviderTest, NullFractionDrivesIsNullSelectivity) {
  const int64_t kRows = 5000;
  TypeFactory tf;
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::vector<Row> rows;
  rows.reserve(kRows);
  for (int64_t i = 0; i < kRows; ++i) {
    rows.push_back({Value::Int(i),
                    uni(rng) < 0.7 ? Value::Null() : Value::Double(uni(rng)),
                    Value::Null()});
  }
  auto table = std::make_shared<MemTable>(StatsRowType(tf), std::move(rows));
  auto stats = AnalyzeTable(*table);
  ASSERT_OK(stats.status());
  table->set_statistic(*stats);

  RelNodePtr scan =
      LogicalTableScan::Create(table, {"t"}, Convention::Enumerable(), tf);
  RelDataTypePtr row_type = table->GetRowType(tf);
  RexBuilder b(tf);
  MetadataQuery mq;

  auto is_null =
      b.MakeCall(OpKind::kIsNull, {b.MakeInputRef(row_type, 1)});
  ASSERT_OK(is_null.status());
  EXPECT_NEAR(mq.Selectivity(scan, *is_null), 0.7, 0.02);

  auto not_null =
      b.MakeCall(OpKind::kIsNotNull, {b.MakeInputRef(row_type, 1)});
  ASSERT_OK(not_null.status());
  EXPECT_NEAR(mq.Selectivity(scan, *not_null), 0.3, 0.02);
}

// ---------------------------------------------------------------------------
// DiskTable: stats persistence and cost-based access paths
// ---------------------------------------------------------------------------

class DiskStatsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/calcite_stats_XXXXXX";
    char* dir = mkdtemp(tmpl);
    ASSERT_NE(dir, nullptr);
    dir_ = dir;
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  static std::vector<Row> MakeRows(int64_t n) {
    std::mt19937_64 rng(17);
    std::uniform_real_distribution<double> uni(0.0, 100.0);
    std::vector<Row> rows;
    rows.reserve(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      rows.push_back({Value::Int(i),
                      i % 4 == 0 ? Value::Null() : Value::Double(uni(rng)),
                      i % 5 == 0 ? Value::Null()
                                 : Value::String("n" + std::to_string(i % 23))});
    }
    return rows;
  }

  std::string dir_;
};

TEST_F(DiskStatsTest, AnalyzePersistsAcrossReopen) {
  TypeFactory tf;
  TableStats before;
  {
    auto table = storage::DiskTable::Create(Path("t.db"), StatsRowType(tf), 0);
    ASSERT_OK(table.status());
    ASSERT_OK((*table)->InsertRows(MakeRows(6000)));
    ASSERT_OK((*table)->Analyze());
    ASSERT_OK((*table)->Flush());
    before = (*table)->stats();
  }
  ASSERT_TRUE(before.analyzed());
  ASSERT_TRUE(before.row_count.has_value());
  EXPECT_DOUBLE_EQ(*before.row_count, 6000.0);

  auto reopened = storage::DiskTable::Open(Path("t.db"), StatsRowType(tf));
  ASSERT_OK(reopened.status());
  const TableStats& after = (*reopened)->stats();

  ASSERT_TRUE(after.analyzed());
  EXPECT_EQ(after.version, before.version);
  ASSERT_TRUE(after.row_count.has_value());
  EXPECT_DOUBLE_EQ(*after.row_count, *before.row_count);
  ASSERT_EQ(after.columns.size(), before.columns.size());
  for (size_t c = 0; c < before.columns.size(); ++c) {
    const ColumnStats& b = before.columns[c];
    const ColumnStats& a = after.columns[c];
    EXPECT_TRUE(a.analyzed);
    EXPECT_TRUE(a.min == b.min) << "col " << c;
    EXPECT_TRUE(a.max == b.max) << "col " << c;
    EXPECT_DOUBLE_EQ(a.null_fraction, b.null_fraction);
    EXPECT_DOUBLE_EQ(a.ndv, b.ndv);
    EXPECT_DOUBLE_EQ(a.histogram.lo, b.histogram.lo);
    EXPECT_DOUBLE_EQ(a.histogram.hi, b.histogram.hi);
    ASSERT_EQ(a.histogram.buckets.size(), b.histogram.buckets.size());
    for (size_t i = 0; i < b.histogram.buckets.size(); ++i) {
      EXPECT_DOUBLE_EQ(a.histogram.buckets[i], b.histogram.buckets[i]);
    }
  }

  // GetStatistic surfaces the ANALYZE columns plus the primary-key facts.
  TableStats surfaced = (*reopened)->GetStatistic();
  EXPECT_TRUE(surfaced.analyzed());
  EXPECT_TRUE(surfaced.IsKey({0}));

  // Re-ANALYZE on the reopened table overwrites the catalog in place.
  ASSERT_OK((*reopened)->Analyze());
  EXPECT_TRUE((*reopened)->stats().analyzed());
}

TEST_F(DiskStatsTest, UnanalyzedTableReadsAsUnanalyzed) {
  TypeFactory tf;
  {
    auto table = storage::DiskTable::Create(Path("t.db"), StatsRowType(tf), 0);
    ASSERT_OK(table.status());
    ASSERT_OK((*table)->InsertRows(MakeRows(100)));
    ASSERT_OK((*table)->Flush());
  }
  auto reopened = storage::DiskTable::Open(Path("t.db"), StatsRowType(tf));
  ASSERT_OK(reopened.status());
  EXPECT_FALSE((*reopened)->stats().analyzed());
  // Declarative facts still surface without ANALYZE.
  TableStats stat = (*reopened)->GetStatistic();
  ASSERT_TRUE(stat.row_count.has_value());
  EXPECT_DOUBLE_EQ(*stat.row_count, 100.0);
}

TEST_F(DiskStatsTest, CostBasedAccessPathSelection) {
  const int64_t kRows = 8000;
  TypeFactory tf;
  storage::DiskTableOptions opts;
  opts.pool_pages = 16;
  auto table =
      storage::DiskTable::Create(Path("t.db"), StatsRowType(tf), 0, opts);
  ASSERT_OK(table.status());
  ASSERT_OK((*table)->InsertRows(MakeRows(kRows)));
  storage::DiskTable& t = **table;

  auto scan_count = [&t](const ScanSpec& spec) -> size_t {
    auto puller = t.OpenScan(spec);
    EXPECT_TRUE(puller.ok()) << puller.status().message();
    if (!puller.ok()) return 0;
    return Drain(*puller).size();
  };

  ScanSpec narrow;  // $0 < 80: 1% of the key range
  narrow.predicates = {Pred(ScanPredicate::Kind::kLessThan, 0, Value::Int(80))};
  ScanSpec wide;  // $0 < 4000: 50%
  wide.predicates = {
      Pred(ScanPredicate::Kind::kLessThan, 0, Value::Int(4000))};

  // Without statistics the legacy rule applies: any derivable range routes
  // to the index, narrow or not.
  EXPECT_EQ(scan_count(narrow), 80u);
  EXPECT_TRUE(t.last_scan_used_index());
  EXPECT_EQ(scan_count(wide), 4000u);
  EXPECT_TRUE(t.last_scan_used_index());

  // With statistics, kAuto is cost-based: index below the break-even
  // fraction, heap above it. Row results are identical either way.
  ASSERT_OK(t.Analyze());
  EXPECT_EQ(scan_count(narrow), 80u);
  EXPECT_TRUE(t.last_scan_used_index());
  EXPECT_EQ(scan_count(wide), 4000u);
  EXPECT_FALSE(t.last_scan_used_index());

  // A predicate that cannot bound the key scans the heap.
  ScanSpec non_key;
  non_key.predicates = {
      Pred(ScanPredicate::Kind::kLessThan, 1, Value::Double(10.0))};
  size_t non_key_rows = scan_count(non_key);
  EXPECT_GT(non_key_rows, 0u);
  EXPECT_FALSE(t.last_scan_used_index());

  // Forced hints override the cost model in both directions.
  wide.access_path = AccessPath::kForceIndex;
  EXPECT_EQ(scan_count(wide), 4000u);
  EXPECT_TRUE(t.last_scan_used_index());
  narrow.access_path = AccessPath::kForceHeap;
  EXPECT_EQ(scan_count(narrow), 80u);
  EXPECT_FALSE(t.last_scan_used_index());

  // The deprecated per-table shim pins the default for kAuto specs.
  narrow.access_path = AccessPath::kAuto;
  t.set_index_scan_enabled(false);
  EXPECT_EQ(scan_count(narrow), 80u);
  EXPECT_FALSE(t.last_scan_used_index());
  t.set_index_scan_enabled(true);
  wide.access_path = AccessPath::kAuto;
  EXPECT_EQ(scan_count(wide), 4000u);
  EXPECT_TRUE(t.last_scan_used_index());
}

TEST_F(DiskStatsTest, UnitRangedOpenScanTilesTheTable) {
  TypeFactory tf;
  storage::DiskTableOptions opts;
  opts.pool_pages = 16;
  opts.pages_per_run = 2;
  auto table =
      storage::DiskTable::Create(Path("t.db"), StatsRowType(tf), 0, opts);
  ASSERT_OK(table.status());
  ASSERT_OK((*table)->InsertRows(MakeRows(3000)));
  storage::DiskTable& t = **table;
  size_t units = t.ScanUnitCount();
  ASSERT_GT(units, 2u);

  // Concatenating per-unit OpenScans reproduces the full scan.
  std::vector<Row> tiled;
  for (size_t u = 0; u < units; ++u) {
    ScanSpec spec;
    spec.unit_begin = u;
    spec.unit_end = u + 1;
    auto puller = t.OpenScan(spec);
    ASSERT_OK(puller.status());
    for (Row& row : Drain(*puller)) tiled.push_back(std::move(row));
  }
  EXPECT_EQ(tiled.size(), 3000u);
  for (size_t i = 0; i < tiled.size(); ++i) {
    EXPECT_EQ(tiled[i][0].AsInt(), static_cast<int64_t>(i));
  }

  // Unit ranges respect pushed predicates, and a begin past the tiling is
  // an error.
  ScanSpec filtered;
  filtered.unit_begin = 0;
  filtered.unit_end = units;
  filtered.predicates = {
      Pred(ScanPredicate::Kind::kGreaterThanOrEqual, 0, Value::Int(2900))};
  auto puller = t.OpenScan(filtered);
  ASSERT_OK(puller.status());
  EXPECT_EQ(Drain(*puller).size(), 100u);

  ScanSpec bad;
  bad.unit_begin = units + 1;
  bad.unit_end = units + 2;
  EXPECT_FALSE(t.OpenScan(bad).ok());
}

}  // namespace
}  // namespace calcite
