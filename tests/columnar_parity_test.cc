// Differential tests of the columnar execution path: every operator that
// was converted to the ColumnBatch currency (scan, filter, project,
// hash aggregate, hash join probe, and the morsel-parallel pipelines) must
// produce byte-identical results with `enable_columnar` on and off, across
// cardinalities that straddle the batch boundary (0 / 1 / 1023 / 1024 /
// 1025), NULL-heavy data, and num_threads ∈ {1, 4} (parallel plans compare
// as multisets — unordered fragments do not promise an order). A SQL-level
// differential runs whole optimized plans both ways, and unit packs cover
// the arena allocator, the table column decomposition, leaf predicate
// pushdown on raw columns, the row/column conversion boundary, and the
// ExecOptions normalization clamps. A fusion axis runs SQL plans and leaf
// scans with `enable_fusion` (the tree-fusing bytecode interpreter plus
// scan range fusion, rex/rex_fuse.h) on and off, which must be invisible.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "adapters/enumerable/enumerable_rels.h"
#include "exec/arena.h"
#include "exec/column_batch.h"
#include "exec/simd.h"
#include "rel/core.h"
#include "rex/rex_builder.h"
#include "storage/disk_table.h"
#include "test_schema.h"
#include "tools/frameworks.h"

namespace calcite {
namespace {

const std::vector<size_t> kCardinalities = {0, 1, 1023, 1024, 1025};

/// Five columns spanning every physical column class: id INT NOT NULL
/// (unique), k INT? (NULL every 3rd row), s VARCHAR? (NULL every 5th row),
/// d DOUBLE? (NULL every 4th row), f BOOLEAN? (NULL every 6th row).
RelDataTypePtr TestRowType(const TypeFactory& tf) {
  auto int_t = tf.CreateSqlType(SqlTypeName::kInteger);
  auto int_null = tf.CreateSqlType(SqlTypeName::kInteger, -1, true);
  auto str_null = tf.CreateSqlType(SqlTypeName::kVarchar, 20, true);
  auto dbl_null = tf.CreateSqlType(SqlTypeName::kDouble, -1, true);
  auto bool_null = tf.CreateSqlType(SqlTypeName::kBoolean, -1, true);
  return tf.CreateStructType({"id", "k", "s", "d", "f"},
                             {int_t, int_null, str_null, dbl_null, bool_null});
}

std::vector<Row> MakeRows(size_t n) {
  std::vector<Row> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back(
        {Value::Int(static_cast<int64_t>(i)),
         i % 3 == 0 ? Value::Null() : Value::Int(static_cast<int64_t>(i % 7)),
         i % 5 == 0 ? Value::Null()
                    : Value::String("s" + std::to_string(i % 11)),
         i % 4 == 0 ? Value::Null()
                    : Value::Double(static_cast<double>(i % 13) * 0.5),
         i % 6 == 0 ? Value::Null() : Value::Bool(i % 2 == 0)});
  }
  return rows;
}

Result<std::vector<Row>> RunPlan(const RelNodePtr& node, const ExecOptions& opts) {
  auto puller = node->ExecuteBatched(opts);
  if (!puller.ok()) return puller.status();
  std::vector<Row> out;
  for (;;) {
    auto batch = (puller.value())();
    if (!batch.ok()) return batch.status();
    if (batch.value().empty()) break;
    for (Row& row : batch.value()) out.push_back(std::move(row));
  }
  return out;
}

std::vector<std::string> Strings(const std::vector<Row>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Row& row : rows) out.push_back(RowToString(row));
  return out;
}

/// Runs `node` with the columnar path disabled (the row engine, the
/// reference) and asserts the columnar path produces identical rows at
/// several batch sizes, then that 4-way parallel execution — columnar and
/// row — produces the same multiset of rows.
void ExpectColumnarParity(const RelNodePtr& node, const std::string& label) {
  ExecOptions row_opts;
  row_opts.enable_columnar = false;
  auto base = RunPlan(node, row_opts);
  ASSERT_TRUE(base.ok()) << label << ": " << base.status().ToString();
  std::vector<std::string> want = Strings(base.value());

  for (size_t bs : {size_t{1}, size_t{3}, size_t{1023}, size_t{1024}}) {
    ExecOptions col_opts;
    col_opts.enable_columnar = true;
    col_opts.batch_size = bs;
    auto got = RunPlan(node, col_opts);
    ASSERT_TRUE(got.ok()) << label << " bs=" << bs << ": "
                          << got.status().ToString();
    std::vector<std::string> got_s = Strings(got.value());
    ASSERT_EQ(got_s.size(), want.size()) << label << " bs=" << bs;
    for (size_t i = 0; i < got_s.size(); ++i) {
      ASSERT_EQ(got_s[i], want[i]) << label << " bs=" << bs << " row " << i;
    }
  }

  std::vector<std::string> want_sorted = want;
  std::sort(want_sorted.begin(), want_sorted.end());
  for (bool columnar : {true, false}) {
    ExecOptions par_opts;
    par_opts.enable_columnar = columnar;
    par_opts.num_threads = 4;
    auto got = RunPlan(node, par_opts);
    ASSERT_TRUE(got.ok()) << label << " threads=4 columnar=" << columnar
                          << ": " << got.status().ToString();
    std::vector<std::string> got_s = Strings(got.value());
    std::sort(got_s.begin(), got_s.end());
    ASSERT_EQ(got_s, want_sorted)
        << label << " threads=4 columnar=" << columnar;
  }
}

class ColumnarParityTest : public ::testing::Test {
 protected:
  /// A scan over a MemTable — the leaf shape that exposes a columnar
  /// decomposition, so plans above it take the ColumnBatch path.
  RelNodePtr Scan(size_t n) {
    auto table = std::make_shared<MemTable>(TestRowType(tf_), MakeRows(n));
    return ScanOf(table);
  }

  RelNodePtr ScanOf(const TablePtr& table) {
    auto logical =
        LogicalTableScan::Create(table, {"t"}, Convention::Enumerable(), tf_);
    return EnumerableTableScan::Create(
        *static_cast<const TableScan*>(logical.get()));
  }

  RexNodePtr Field(const RelDataTypePtr& row_type, int i) {
    return rex_.MakeInputRef(row_type, i);
  }

  TypeFactory tf_;
  RexBuilder rex_;
};

TEST_F(ColumnarParityTest, TableScan) {
  for (size_t n : kCardinalities) {
    ExpectColumnarParity(Scan(n), "Scan n=" + std::to_string(n));
  }
}

TEST_F(ColumnarParityTest, Filter) {
  for (size_t n : kCardinalities) {
    RelNodePtr scan = Scan(n);
    const RelDataTypePtr& rt = scan->row_type();
    // Fully pushable: runs on the raw columns inside the leaf scan.
    auto lt = rex_.MakeCall(OpKind::kLessThan,
                            {Field(rt, 0), rex_.MakeIntLiteral(900)});
    ASSERT_TRUE(lt.ok());
    auto nn = rex_.MakeCall(OpKind::kIsNotNull, {Field(rt, 1)});
    ASSERT_TRUE(nn.ok());
    ExpectColumnarParity(
        EnumerableFilter::Create(scan, rex_.MakeAnd({lt.value(), nn.value()})),
        "Filter(pushed) n=" + std::to_string(n));

    // Pushed conjuncts plus a typed residual over two column refs.
    auto refs = rex_.MakeCall(OpKind::kGreaterThan,
                              {Field(rt, 0), Field(rt, 1)});
    ASSERT_TRUE(refs.ok());
    ExpectColumnarParity(
        EnumerableFilter::Create(
            scan, rex_.MakeAnd({lt.value(), refs.value()})),
        "Filter(residual) n=" + std::to_string(n));

    // Row-oracle fallback: LIKE is outside the typed kernel set.
    auto like = rex_.MakeCall(
        OpKind::kLike, {Field(rt, 2), rex_.MakeStringLiteral("s1%")});
    ASSERT_TRUE(like.ok());
    auto dgt = rex_.MakeCall(OpKind::kGreaterThan,
                             {Field(rt, 3), rex_.MakeDoubleLiteral(2.0)});
    ASSERT_TRUE(dgt.ok());
    ExpectColumnarParity(
        EnumerableFilter::Create(scan,
                                 rex_.MakeOr({like.value(), dgt.value()})),
        "Filter(fallback) n=" + std::to_string(n));

    // A nullable BOOLEAN column used directly as the condition.
    ExpectColumnarParity(EnumerableFilter::Create(scan, Field(rt, 4)),
                         "Filter(bool col) n=" + std::to_string(n));

    // Eliminates everything (columnar batches are skipped, never empty).
    ExpectColumnarParity(
        EnumerableFilter::Create(scan, rex_.MakeBoolLiteral(false)),
        "Filter(false) n=" + std::to_string(n));
  }
}

TEST_F(ColumnarParityTest, Project) {
  for (size_t n : kCardinalities) {
    RelNodePtr scan = Scan(n);
    const RelDataTypePtr& rt = scan->row_type();
    auto sum = rex_.MakeCall(OpKind::kPlus,
                             {Field(rt, 0), rex_.MakeIntLiteral(7)});
    ASSERT_TRUE(sum.ok());
    auto prod = rex_.MakeCall(OpKind::kTimes,
                              {Field(rt, 3), rex_.MakeDoubleLiteral(2.0)});
    ASSERT_TRUE(prod.ok());
    auto upper = rex_.MakeCall(OpKind::kUpper, {Field(rt, 2)});  // fallback
    ASSERT_TRUE(upper.ok());
    std::vector<RexNodePtr> exprs = {Field(rt, 0), sum.value(), prod.value(),
                                     upper.value(), Field(rt, 4),
                                     rex_.MakeStringLiteral("const")};
    auto row_type = DeriveProjectRowType(
        exprs, {"id", "id7", "d2", "us", "f", "c"}, tf_);
    ExpectColumnarParity(EnumerableProject::Create(scan, exprs, row_type),
                         "Project n=" + std::to_string(n));

    // Project over a filter: the projection consumes a selection-carrying
    // columnar stream.
    auto cond = rex_.MakeCall(OpKind::kGreaterThanOrEqual,
                              {Field(rt, 0), rex_.MakeIntLiteral(5)});
    ASSERT_TRUE(cond.ok());
    ExpectColumnarParity(
        EnumerableProject::Create(EnumerableFilter::Create(scan, cond.value()),
                                  exprs, row_type),
        "Project(filtered) n=" + std::to_string(n));
  }
}

TEST_F(ColumnarParityTest, Aggregate) {
  for (size_t n : kCardinalities) {
    RelNodePtr scan = Scan(n);
    const RelDataTypePtr& rt = scan->row_type();
    std::vector<AggregateCall> calls;
    {
      AggregateCall c;
      c.kind = AggKind::kCountStar;
      c.name = "cnt";
      calls.push_back(c);
      c.kind = AggKind::kCount;
      c.args = {1};
      c.name = "cnt_k";
      calls.push_back(c);
      c.kind = AggKind::kSum;
      c.args = {3};
      c.name = "sum_d";
      calls.push_back(c);
      c.kind = AggKind::kAvg;
      c.args = {0};
      c.name = "avg_id";
      calls.push_back(c);
      c.kind = AggKind::kMin;
      c.args = {2};
      c.name = "min_s";
      calls.push_back(c);
      c.kind = AggKind::kMax;
      c.args = {3};
      c.name = "max_d";
      calls.push_back(c);
      c.kind = AggKind::kCount;
      c.args = {1};
      c.distinct = true;
      c.name = "cntd_k";
      calls.push_back(c);
    }
    // Global (one output row even over empty input).
    {
      auto row_type = DeriveAggregateRowType(rt, {}, calls, tf_);
      ExpectColumnarParity(
          EnumerableAggregate::Create(scan, {}, calls, row_type),
          "Aggregate(global) n=" + std::to_string(n));
    }
    // Grouped by the NULL-heavy int column (the typed group-key fast path).
    {
      auto row_type = DeriveAggregateRowType(rt, {1}, calls, tf_);
      ExpectColumnarParity(
          EnumerableAggregate::Create(scan, {1}, calls, row_type),
          "Aggregate(k) n=" + std::to_string(n));
    }
    // Grouped by the string column (boxed group keys).
    {
      auto row_type = DeriveAggregateRowType(rt, {2}, calls, tf_);
      ExpectColumnarParity(
          EnumerableAggregate::Create(scan, {2}, calls, row_type),
          "Aggregate(s) n=" + std::to_string(n));
    }
    // Two group keys: the columnar builder declines, row path runs.
    {
      auto row_type = DeriveAggregateRowType(rt, {1, 2}, calls, tf_);
      ExpectColumnarParity(
          EnumerableAggregate::Create(scan, {1, 2}, calls, row_type),
          "Aggregate(k,s) n=" + std::to_string(n));
    }
    // Aggregate over a filter (selection-carrying columnar input).
    {
      auto cond = rex_.MakeCall(OpKind::kLessThan,
                                {Field(rt, 0), rex_.MakeIntLiteral(777)});
      ASSERT_TRUE(cond.ok());
      auto row_type = DeriveAggregateRowType(rt, {1}, calls, tf_);
      ExpectColumnarParity(
          EnumerableAggregate::Create(
              EnumerableFilter::Create(scan, cond.value()), {1}, calls,
              row_type),
          "Aggregate(filtered) n=" + std::to_string(n));
    }
  }
}

TEST_F(ColumnarParityTest, HashJoinAllTypes) {
  const std::vector<JoinType> join_types = {
      JoinType::kInner, JoinType::kLeft,  JoinType::kRight,
      JoinType::kFull,  JoinType::kSemi,  JoinType::kAnti};
  for (size_t n : {size_t{0}, size_t{1}, size_t{1023}, size_t{1025}}) {
    RelNodePtr left = Scan(n);
    RelNodePtr right = Scan(97);
    const RelDataTypePtr& lt = left->row_type();
    const RelDataTypePtr& rt = right->row_type();
    size_t left_width = lt->fields().size();
    // Equi-key on the NULL-heavy k columns plus a non-equi residual.
    auto equi = rex_.MakeEquals(
        Field(lt, 1), rex_.MakeInputRef(static_cast<int>(left_width) + 1,
                                        rt->fields()[1].type));
    auto bound = rex_.MakeCall(
        OpKind::kPlus,
        {rex_.MakeInputRef(static_cast<int>(left_width) + 0,
                           rt->fields()[0].type),
         rex_.MakeIntLiteral(700)});
    ASSERT_TRUE(bound.ok());
    auto residual =
        rex_.MakeCall(OpKind::kLessThan, {Field(lt, 0), bound.value()});
    ASSERT_TRUE(residual.ok());
    RexNodePtr condition = rex_.MakeAnd({equi, residual.value()});
    for (JoinType jt : join_types) {
      auto row_type = DeriveJoinRowType(lt, rt, jt, tf_);
      ExpectColumnarParity(
          EnumerableHashJoin::Create(left, right, condition, jt, row_type),
          std::string("HashJoin ") + JoinTypeName(jt) +
              " n=" + std::to_string(n));
    }
    // Probe side under a filter: the probe consumes a selection-carrying
    // columnar stream.
    auto lcond = rex_.MakeCall(OpKind::kGreaterThanOrEqual,
                               {Field(lt, 0), rex_.MakeIntLiteral(3)});
    ASSERT_TRUE(lcond.ok());
    auto inner_type = DeriveJoinRowType(lt, rt, JoinType::kInner, tf_);
    ExpectColumnarParity(
        EnumerableHashJoin::Create(EnumerableFilter::Create(left,
                                                            lcond.value()),
                                   right, equi, JoinType::kInner, inner_type),
        "HashJoin(filtered probe) n=" + std::to_string(n));
  }
}

TEST_F(ColumnarParityTest, PipelineScanFilterProjectAggregate) {
  // The full converted pipeline in one plan, the hot-path shape the
  // benchmark sweeps measure.
  for (size_t n : kCardinalities) {
    RelNodePtr scan = Scan(n);
    const RelDataTypePtr& rt = scan->row_type();
    auto cond = rex_.MakeCall(OpKind::kLessThan,
                              {Field(rt, 0), rex_.MakeIntLiteral(999)});
    ASSERT_TRUE(cond.ok());
    RelNodePtr filtered = EnumerableFilter::Create(scan, cond.value());
    auto twice = rex_.MakeCall(OpKind::kTimes,
                               {Field(rt, 0), rex_.MakeIntLiteral(2)});
    ASSERT_TRUE(twice.ok());
    std::vector<RexNodePtr> exprs = {Field(rt, 1), twice.value(),
                                     Field(rt, 3)};
    auto proj_type = DeriveProjectRowType(exprs, {"k", "id2", "d"}, tf_);
    RelNodePtr projected =
        EnumerableProject::Create(filtered, exprs, proj_type);
    std::vector<AggregateCall> calls;
    {
      AggregateCall c;
      c.kind = AggKind::kCountStar;
      c.name = "cnt";
      calls.push_back(c);
      c.kind = AggKind::kSum;
      c.args = {1};
      c.name = "sum_id2";
      calls.push_back(c);
      c.kind = AggKind::kAvg;
      c.args = {2};
      c.name = "avg_d";
      calls.push_back(c);
    }
    auto agg_type = DeriveAggregateRowType(proj_type, {0}, calls, tf_);
    ExpectColumnarParity(
        EnumerableAggregate::Create(projected, {0}, calls, agg_type),
        "Pipeline n=" + std::to_string(n));
  }
}

TEST_F(ColumnarParityTest, DiskTableScansBypassColumnarCache) {
  // A DiskTable exposes no columnar decomposition (MaterializedColumns is
  // nullptr — decomposing would pin the whole table in RAM), so columnar
  // execution must transparently fall back to the row path and still match
  // it exactly, serial and 4-way parallel, with the buffer pool far smaller
  // than the table. Exercised bare and under a filter whose primary-key
  // conjunct routes to the B-tree on the serial path, with the index both
  // enabled and forced off.
  char tmpl[] = "/tmp/calcite_colpar_disk_XXXXXX";
  char* dir = mkdtemp(tmpl);
  ASSERT_NE(dir, nullptr);
  const std::string dir_path = dir;

  for (size_t n : {size_t{0}, size_t{1}, size_t{1025}, size_t{4000}}) {
    storage::DiskTableOptions dt_opts;
    dt_opts.pool_pages = 8;
    auto table = storage::DiskTable::Create(
        dir_path + "/t" + std::to_string(n) + ".db", TestRowType(tf_), 0,
        dt_opts);
    ASSERT_TRUE(table.ok()) << table.status().ToString();
    ASSERT_TRUE((*table)->InsertRows(MakeRows(n)).ok());
    TypeFactory tf;
    EXPECT_EQ((*table)->MaterializedColumns(tf), nullptr);
    EXPECT_EQ((*table)->MaterializedRows(), nullptr);

    RelNodePtr scan = ScanOf(*table);
    ExpectColumnarParity(scan, "DiskScan n=" + std::to_string(n));

    const RelDataTypePtr& rt = scan->row_type();
    auto key_range = rex_.MakeCall(OpKind::kLessThan,
                                   {Field(rt, 0), rex_.MakeIntLiteral(500)});
    ASSERT_TRUE(key_range.ok());
    auto residual = rex_.MakeCall(OpKind::kIsNotNull, {Field(rt, 3)});
    ASSERT_TRUE(residual.ok());
    RelNodePtr filtered = EnumerableFilter::Create(
        scan, rex_.MakeAnd({key_range.value(), residual.value()}));
    for (bool index_on : {true, false}) {
      (*table)->set_index_scan_enabled(index_on);
      ExpectColumnarParity(filtered, "DiskFilter n=" + std::to_string(n) +
                                         " index=" + std::to_string(index_on));
    }
    (*table)->set_index_scan_enabled(true);
    EXPECT_EQ((*table)->buffer_pool().pinned_frames(), 0u);
  }
  std::error_code ec;
  std::filesystem::remove_all(dir_path, ec);
}

TEST_F(ColumnarParityTest, MutationInvalidatesColumnarCache) {
  auto table = std::make_shared<MemTable>(TestRowType(tf_), MakeRows(10));
  RelNodePtr scan = ScanOf(table);
  ExecOptions opts;  // columnar on
  auto before = RunPlan(scan, opts);
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before.value().size(), 10u);

  // Mutate through rows(): the cached decomposition must be dropped, so the
  // next columnar scan sees the new data.
  table->rows()[0][0] = Value::Int(4242);
  table->rows().push_back(MakeRows(11).back());
  auto after = RunPlan(scan, opts);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after.value().size(), 11u);
  EXPECT_EQ(after.value()[0][0].ToString(), Value::Int(4242).ToString());
}

// ------------------------------ arena pack ----------------------------------

TEST(ArenaTest, AlignmentAndBytesUsed) {
  // Column storage must start on 64-byte boundaries (full cache line, widest
  // SIMD register): every kernel in exec/simd.h may assume vector loads from
  // an arena column's head never straddle a line.
  static_assert(Arena::kAlignment == 64, "SIMD kernels assume 64B columns");
  static_assert((Arena::kAlignment & (Arena::kAlignment - 1)) == 0,
                "alignment must be a power of two");
  Arena arena;
  for (size_t bytes : {size_t{1}, size_t{3}, size_t{17}, size_t{160}}) {
    void* p = arena.Allocate(bytes);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % Arena::kAlignment, 0u) << bytes;
  }
  EXPECT_GE(arena.bytes_used(), 1u + 3u + 17u + 160u);
  int64_t* col = arena.AllocateArray<int64_t>(100);
  col[0] = 7;
  col[99] = -7;
  EXPECT_EQ(col[0] + col[99], 0);
}

TEST(ArenaTest, ResetCoalescesChunks) {
  Arena arena(/*chunk_bytes=*/128);
  // Spill across several chunks.
  for (int i = 0; i < 10; ++i) arena.Allocate(100);
  EXPECT_GT(arena.chunk_count(), 1u);
  size_t used = arena.bytes_used();
  EXPECT_GE(used, 1000u);
  arena.Reset();
  // Coalesced into one chunk large enough for the whole workload, counters
  // rewound.
  EXPECT_EQ(arena.chunk_count(), 1u);
  EXPECT_EQ(arena.bytes_used(), 0u);
  for (int i = 0; i < 10; ++i) arena.Allocate(100);
  EXPECT_EQ(arena.chunk_count(), 1u);
}

TEST(ArenaTest, PoolRecyclesFreedArenas) {
  ArenaPool pool;
  ArenaPtr a = pool.Acquire();
  Arena* raw = a.get();
  a->Allocate(64);
  // Still referenced by the caller: the pool must hand out a fresh arena.
  ArenaPtr b = pool.Acquire();
  EXPECT_NE(b.get(), raw);
  // Released: the next Acquire reuses the arena, reset.
  a.reset();
  ArenaPtr c = pool.Acquire();
  EXPECT_EQ(c.get(), raw);
  EXPECT_EQ(c->bytes_used(), 0u);
}

// -------------------------- column batch pack -------------------------------

class ColumnBatchTest : public ::testing::Test {
 protected:
  TypeFactory tf_;
};

TEST_F(ColumnBatchTest, BuildProducesTypedColumnsWithNullMaps) {
  auto row_type = TestRowType(tf_);
  std::vector<Row> rows = MakeRows(30);
  auto cols = TableColumns::Build(rows, *row_type);
  ASSERT_NE(cols, nullptr);
  ASSERT_EQ(cols->num_rows, 30u);
  ASSERT_EQ(cols->cols.size(), 5u);
  EXPECT_EQ(cols->cols[0].type, PhysType::kInt64);
  EXPECT_EQ(cols->cols[1].type, PhysType::kInt64);
  EXPECT_EQ(cols->cols[2].type, PhysType::kString);
  EXPECT_EQ(cols->cols[3].type, PhysType::kDouble);
  EXPECT_EQ(cols->cols[4].type, PhysType::kBool);
  EXPECT_TRUE(cols->cols[0].nulls.empty());   // NOT NULL column
  EXPECT_FALSE(cols->cols[1].nulls.empty());  // has NULLs
  // Cell-level parity with the source rows, via the column views.
  for (size_t c = 0; c < 5; ++c) {
    ColumnVector view = cols->View(c, 0);
    for (size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(view.GetValue(i).ToString(), rows[i][c].ToString())
          << "col " << c << " row " << i;
    }
  }
}

TEST_F(ColumnBatchTest, BuildDegradesMistypedColumnToBoxed) {
  auto row_type = TestRowType(tf_);
  std::vector<Row> rows = MakeRows(5);
  rows[2][0] = Value::String("not an int");  // declared INT
  auto cols = TableColumns::Build(rows, *row_type);
  ASSERT_NE(cols, nullptr);
  EXPECT_EQ(cols->cols[0].type, PhysType::kValue);
  ColumnVector view = cols->View(0, 0);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(view.GetValue(i).ToString(), rows[i][0].ToString());
  }
  // Ragged rows cannot be decomposed at all.
  rows[3].pop_back();
  EXPECT_EQ(TableColumns::Build(rows, *row_type), nullptr);
}

TEST_F(ColumnBatchTest, ScanTableColumnsMatchesRowPredicates) {
  auto row_type = TestRowType(tf_);
  std::vector<Row> rows = MakeRows(2050);
  auto cols = TableColumns::Build(rows, *row_type);
  ASSERT_NE(cols, nullptr);

  ScanPredicateList preds;
  {
    ScanPredicate p;
    p.kind = ScanPredicate::Kind::kLessThan;
    p.column = 0;
    p.literal = Value::Int(1900);
    preds.push_back(p);
    p.kind = ScanPredicate::Kind::kIsNotNull;
    p.column = 1;
    p.literal = Value();
    preds.push_back(p);
    p.kind = ScanPredicate::Kind::kGreaterThanOrEqual;
    p.column = 3;
    p.literal = Value::Double(1.0);
    preds.push_back(p);
  }
  std::vector<Row> want;
  for (const Row& row : rows) {
    if (ScanPredicatesMatch(preds, row)) want.push_back(row);
  }
  ASSERT_FALSE(want.empty());

  for (size_t bs : {size_t{1}, size_t{7}, size_t{1024}}) {
    auto pull = ScanTableColumns(cols, bs, preds, cols);
    std::vector<Row> got;
    for (;;) {
      auto batch = pull();
      ASSERT_TRUE(batch.ok());
      if (batch.value().AtEnd()) break;
      // Never an empty batch mid-stream; physical rows respect the cap.
      ASSERT_GT(batch.value().ActiveCount(), 0u);
      ASSERT_LE(batch.value().num_rows, bs);
      RowBatch boxed;
      ColumnsToRows(batch.value(), &boxed);
      for (Row& row : boxed) got.push_back(std::move(row));
    }
    ASSERT_EQ(got.size(), want.size()) << "bs=" << bs;
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(RowToString(got[i]), RowToString(want[i]))
          << "bs=" << bs << " row " << i;
    }
  }
}

TEST_F(ColumnBatchTest, RowColumnRoundTrip) {
  auto row_type = TestRowType(tf_);
  RowBatch rows = MakeRows(97);
  auto cols = RowsToColumns(rows, *row_type);
  ASSERT_TRUE(cols.ok()) << cols.status().ToString();
  RowBatch back;
  ColumnsToRows(cols.value(), &back);
  ASSERT_EQ(back.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(RowToString(back[i]), RowToString(rows[i])) << "row " << i;
  }
  // With a selection, only the active rows are boxed, in order.
  ColumnBatch selected = cols.value();
  selected.sel = {0, 13, 96};
  selected.has_sel = true;
  RowBatch live;
  ColumnsToRows(selected, &live);
  ASSERT_EQ(live.size(), 3u);
  EXPECT_EQ(RowToString(live[0]), RowToString(rows[0]));
  EXPECT_EQ(RowToString(live[1]), RowToString(rows[13]));
  EXPECT_EQ(RowToString(live[2]), RowToString(rows[96]));
  // GatherRow boxes one physical row.
  EXPECT_EQ(RowToString(cols.value().GatherRow(42)), RowToString(rows[42]));
}

TEST(ExecOptionsTest, NormalizedClampsBothKnobs) {
  ExecOptions opts;
  opts.batch_size = 0;
  opts.num_threads = 0;
  ExecOptions norm = opts.Normalized();
  EXPECT_EQ(norm.batch_size, 1u);
  EXPECT_EQ(norm.num_threads, 1u);

  opts.batch_size = SIZE_MAX;  // config typo must not become a huge alloc
  opts.num_threads = 8;
  norm = opts.Normalized();
  EXPECT_EQ(norm.batch_size, kMaxBatchSize);
  EXPECT_EQ(norm.num_threads, 8u);

  opts.batch_size = kMaxBatchSize;  // boundary passes through untouched
  norm = opts.Normalized();
  EXPECT_EQ(norm.batch_size, kMaxBatchSize);

  opts.batch_size = 777;  // in-range values pass through untouched
  norm = opts.Normalized();
  EXPECT_EQ(norm.batch_size, 777u);
  EXPECT_TRUE(norm.enable_columnar);  // default stays on
}

// ------------------------- SQL-level differential ---------------------------
//
// Whole optimized plans must produce identical result grids with the
// columnar path on and off, serial and 4-way parallel. Every query is
// fully ordered (ORDER BY over a unique prefix, or a single aggregate
// row), so even parallel grids compare byte-identically.

TEST_F(ColumnBatchTest, ScanRangeFusionMatchesUnfused) {
  auto row_type = TestRowType(tf_);
  std::vector<Row> rows = MakeRows(2050);
  auto cols = TableColumns::Build(rows, *row_type);
  ASSERT_NE(cols, nullptr);

  // A fusable pair on $0, a fusable double pair on $3 split around an
  // unrelated equality, and a partnerless bound — FuseScanRanges pairs the
  // first two and leaves the rest.
  ScanPredicateList preds;
  {
    ScanPredicate p;
    p.kind = ScanPredicate::Kind::kGreaterThanOrEqual;
    p.column = 0;
    p.literal = Value::Int(100);
    preds.push_back(p);
    p.kind = ScanPredicate::Kind::kLessThan;
    p.column = 0;
    p.literal = Value::Int(1800);
    preds.push_back(p);
    p.kind = ScanPredicate::Kind::kGreaterThan;
    p.column = 3;
    p.literal = Value::Double(0.5);
    preds.push_back(p);
    p.kind = ScanPredicate::Kind::kLessThanOrEqual;
    p.column = 3;
    p.literal = Value::Double(5.0);
    preds.push_back(p);
    p.kind = ScanPredicate::Kind::kGreaterThan;
    p.column = 1;
    p.literal = Value::Int(1);
    preds.push_back(p);
  }
  std::vector<Row> want;
  for (const Row& row : rows) {
    if (ScanPredicatesMatch(preds, row)) want.push_back(row);
  }
  ASSERT_FALSE(want.empty());

  for (size_t bs : {size_t{1}, size_t{7}, size_t{1024}}) {
    for (bool fuse : {true, false}) {
      auto pull = ScanTableColumns(cols, bs, preds, cols, fuse);
      std::vector<Row> got;
      for (;;) {
        auto batch = pull();
        ASSERT_TRUE(batch.ok());
        if (batch.value().AtEnd()) break;
        RowBatch boxed;
        ColumnsToRows(batch.value(), &boxed);
        for (Row& row : boxed) got.push_back(std::move(row));
      }
      ASSERT_EQ(got.size(), want.size()) << "bs=" << bs << " fuse=" << fuse;
      for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(RowToString(got[i]), RowToString(want[i]))
            << "bs=" << bs << " fuse=" << fuse << " row " << i;
      }
    }
  }
}

TEST(ColumnarSqlTest, QueriesMatchWithColumnarOnAndOff) {
  const std::vector<std::string> queries = {
      "SELECT * FROM sales ORDER BY saleid",
      "SELECT saleid, units FROM sales WHERE discount IS NOT NULL "
      "ORDER BY saleid",
      "SELECT saleid, units * 2 AS u2 FROM sales WHERE units > 2 "
      "ORDER BY saleid",
      "SELECT products.name, COUNT(*) AS c, SUM(sales.units) AS u "
      "FROM sales JOIN products USING (productId) "
      "GROUP BY products.name ORDER BY c DESC, products.name",
      "SELECT deptno, COUNT(*) AS c FROM emps GROUP BY deptno "
      "ORDER BY deptno",
      "SELECT COUNT(*) AS c, SUM(units) AS s, AVG(discount) AS a FROM sales",
      "SELECT empid FROM emps ORDER BY salary DESC LIMIT 2 OFFSET 1",
  };
  std::vector<std::string> baseline;
  {
    Connection::Config config;
    config.schema = testing::MakeTestSchema();
    config.exec_options.enable_columnar = false;
    Connection conn(std::move(config));
    for (const std::string& sql : queries) {
      auto result = conn.Query(sql);
      ASSERT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
      baseline.push_back(result.value().ToTable());
    }
  }
  struct Config {
    bool columnar;
    size_t threads;
  };
  for (Config cfg : {Config{true, 1}, Config{true, 4}, Config{false, 4}}) {
    Connection::Config config;
    config.schema = testing::MakeTestSchema();
    config.exec_options.enable_columnar = cfg.columnar;
    config.exec_options.num_threads = cfg.threads;
    Connection conn(std::move(config));
    for (size_t q = 0; q < queries.size(); ++q) {
      auto result = conn.Query(queries[q]);
      ASSERT_TRUE(result.ok())
          << queries[q] << ": " << result.status().ToString();
      EXPECT_EQ(result.value().ToTable(), baseline[q])
          << queries[q] << " columnar=" << cfg.columnar
          << " threads=" << cfg.threads;
    }
  }
}

// The vectorized kernel dispatch (exec/simd.h) must be invisible at the SQL
// level: whole plans produce identical grids with SIMD forced off (scalar
// reference kernels) and on, serial and parallel. In a CALCITE_SIMD=OFF
// build both runs take the scalar path and the test degenerates to a no-op
// sanity pass, which is fine — the CI matrix builds both ways.
TEST(ColumnarSqlTest, QueriesMatchWithSimdOnAndOff) {
  const std::vector<std::string> queries = {
      "SELECT saleid, units FROM sales WHERE units > 2 AND discount < 0.2 "
      "ORDER BY saleid",
      "SELECT saleid, units * 2 + saleid AS u2 FROM sales "
      "WHERE discount IS NOT NULL ORDER BY saleid",
      "SELECT deptno, COUNT(*) AS c, SUM(salary) AS s FROM emps "
      "GROUP BY deptno ORDER BY deptno",
      "SELECT products.name, SUM(sales.units) AS u "
      "FROM sales JOIN products USING (productId) "
      "GROUP BY products.name ORDER BY u DESC, products.name",
  };
  std::vector<std::string> baseline;
  {
    simd::ScopedDispatch scalar(/*enable_simd=*/false);
    Connection::Config config;
    config.schema = testing::MakeTestSchema();
    Connection conn(std::move(config));
    for (const std::string& sql : queries) {
      auto result = conn.Query(sql);
      ASSERT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
      baseline.push_back(result.value().ToTable());
    }
  }
  struct Config {
    bool simd;
    size_t threads;
  };
  for (Config cfg : {Config{true, 1}, Config{true, 4}, Config{false, 4}}) {
    simd::ScopedDispatch dispatch(cfg.simd);
    Connection::Config config;
    config.schema = testing::MakeTestSchema();
    config.exec_options.num_threads = cfg.threads;
    Connection conn(std::move(config));
    for (size_t q = 0; q < queries.size(); ++q) {
      auto result = conn.Query(queries[q]);
      ASSERT_TRUE(result.ok())
          << queries[q] << ": " << result.status().ToString();
      EXPECT_EQ(result.value().ToTable(), baseline[q])
          << queries[q] << " simd=" << cfg.simd << " threads=" << cfg.threads;
    }
  }
}

// The tree-fusing bytecode interpreter (rex/rex_fuse.h) must likewise be
// invisible at the SQL level: whole optimized plans — serial and
// morsel-parallel — produce identical grids with `enable_fusion` on (the
// default: fused expression pipelines plus scan range fusion) and off (the
// per-node kernel path everywhere). The queries mix fusible arithmetic
// chains, range-pair WHERE clauses that exercise scan range fusion, NULL
// three-valued logic, literal division, and operators outside the fused set
// so the whole-tree fallback runs inside real plans.
TEST(ColumnarSqlTest, QueriesMatchWithFusionOnAndOff) {
  const std::vector<std::string> queries = {
      "SELECT saleid, (units + saleid) * 2 AS m FROM sales "
      "WHERE (units + saleid) * 2 > 8 ORDER BY saleid",
      "SELECT saleid FROM sales WHERE saleid >= 2 AND saleid < 5 "
      "ORDER BY saleid",
      "SELECT saleid, units FROM sales "
      "WHERE units > 1 AND discount < 0.3 AND discount IS NOT NULL "
      "ORDER BY saleid",
      "SELECT saleid, units / 2 AS h, units * 1.5 AS w FROM sales "
      "ORDER BY saleid",
      "SELECT empid, salary FROM emps "
      "WHERE salary >= 7000.0 AND salary < 11500.0 ORDER BY empid",
      "SELECT deptno, COUNT(*) AS c, SUM(salary + 1) AS s FROM emps "
      "WHERE empid >= 100 AND empid < 240 GROUP BY deptno ORDER BY deptno",
      "SELECT name FROM products WHERE UPPER(name) LIKE 'P%' ORDER BY name",
  };
  std::vector<std::string> baseline;
  {
    Connection::Config config;
    config.schema = testing::MakeTestSchema();
    config.exec_options.enable_fusion = false;
    Connection conn(std::move(config));
    for (const std::string& sql : queries) {
      auto result = conn.Query(sql);
      ASSERT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
      baseline.push_back(result.value().ToTable());
    }
  }
  struct Config {
    bool fusion;
    size_t threads;
  };
  for (Config cfg : {Config{true, 1}, Config{true, 4}, Config{false, 4}}) {
    Connection::Config config;
    config.schema = testing::MakeTestSchema();
    config.exec_options.enable_fusion = cfg.fusion;
    config.exec_options.num_threads = cfg.threads;
    Connection conn(std::move(config));
    for (size_t q = 0; q < queries.size(); ++q) {
      auto result = conn.Query(queries[q]);
      ASSERT_TRUE(result.ok())
          << queries[q] << ": " << result.status().ToString();
      EXPECT_EQ(result.value().ToTable(), baseline[q])
          << queries[q] << " fusion=" << cfg.fusion
          << " threads=" << cfg.threads;
    }
  }
}

}  // namespace
}  // namespace calcite
