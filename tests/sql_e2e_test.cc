#include <gtest/gtest.h>

#include <algorithm>

#include "test_schema.h"
#include "tools/frameworks.h"

namespace calcite {
namespace {

class SqlE2eTest : public ::testing::Test {
 protected:
  SqlE2eTest() : conn_(Connection::Config{testing::MakeTestSchema()}) {}

  QueryResult MustQuery(const std::string& sql) {
    auto result = conn_.Query(sql);
    EXPECT_TRUE(result.ok()) << sql << "\n" << result.status().ToString();
    return result.ok() ? std::move(result).value() : QueryResult{};
  }

  Status QueryError(const std::string& sql) {
    auto result = conn_.Query(sql);
    EXPECT_FALSE(result.ok()) << sql << " unexpectedly succeeded";
    return result.ok() ? Status::OK() : result.status();
  }

  Connection conn_;
};

TEST_F(SqlE2eTest, SelectStar) {
  QueryResult r = MustQuery("SELECT * FROM emps");
  EXPECT_EQ(r.rows.size(), 5u);
  EXPECT_EQ(r.row_type->field_count(), 4);
}

TEST_F(SqlE2eTest, Projection) {
  QueryResult r = MustQuery("SELECT name, salary * 2 AS double_pay FROM emps");
  ASSERT_EQ(r.rows.size(), 5u);
  EXPECT_EQ(r.row_type->fields()[1].name, "double_pay");
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsDouble(), 20000.0);
}

TEST_F(SqlE2eTest, WhereFilter) {
  QueryResult r = MustQuery("SELECT name FROM emps WHERE deptno = 20");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(SqlE2eTest, WhereCompound) {
  QueryResult r = MustQuery(
      "SELECT name FROM emps WHERE deptno = 20 OR salary > 10000");
  EXPECT_EQ(r.rows.size(), 3u);
}

TEST_F(SqlE2eTest, OrderByLimit) {
  QueryResult r = MustQuery(
      "SELECT name, salary FROM emps ORDER BY salary DESC LIMIT 2");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "Theodore");
  EXPECT_EQ(r.rows[1][0].AsString(), "Bill");
}

TEST_F(SqlE2eTest, OrderByOrdinalAndOffset) {
  QueryResult r = MustQuery(
      "SELECT name, salary FROM emps ORDER BY 2 OFFSET 1 LIMIT 2");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "Eric");
}

TEST_F(SqlE2eTest, GroupByAggregates) {
  QueryResult r = MustQuery(
      "SELECT deptno, COUNT(*) AS c, SUM(salary) AS s, AVG(salary) AS a, "
      "MIN(salary) AS lo, MAX(salary) AS hi FROM emps GROUP BY deptno "
      "ORDER BY deptno");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 10);
  EXPECT_EQ(r.rows[0][1].AsInt(), 2);
  EXPECT_DOUBLE_EQ(r.rows[0][2].AsDouble(), 21500.0);
  EXPECT_DOUBLE_EQ(r.rows[0][3].AsDouble(), 10750.0);
  EXPECT_DOUBLE_EQ(r.rows[0][4].AsDouble(), 10000.0);
  EXPECT_DOUBLE_EQ(r.rows[0][5].AsDouble(), 11500.0);
}

TEST_F(SqlE2eTest, GlobalAggregate) {
  QueryResult r = MustQuery("SELECT COUNT(*), SUM(units) FROM sales");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 6);
  EXPECT_EQ(r.rows[0][1].AsInt(), 26);
}

TEST_F(SqlE2eTest, Having) {
  QueryResult r = MustQuery(
      "SELECT deptno, COUNT(*) AS c FROM emps GROUP BY deptno "
      "HAVING COUNT(*) > 1 ORDER BY deptno");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(SqlE2eTest, CountDistinct) {
  QueryResult r = MustQuery("SELECT COUNT(DISTINCT productId) FROM sales");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);
}

TEST_F(SqlE2eTest, ThePaperFigure4Query) {
  // §6's example query, verbatim modulo table contents.
  QueryResult r = MustQuery(
      "SELECT products.name, COUNT(*) "
      "FROM sales JOIN products USING (productId) "
      "WHERE sales.discount IS NOT NULL "
      "GROUP BY products.name "
      "ORDER BY COUNT(*) DESC");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][0].AsString(), "Gadget");
  EXPECT_EQ(r.rows[0][1].AsInt(), 2);
}

TEST_F(SqlE2eTest, InnerJoinOn) {
  QueryResult r = MustQuery(
      "SELECT e.name, d.dept_name FROM emps e JOIN depts d "
      "ON e.deptno = d.deptno ORDER BY e.name");
  ASSERT_EQ(r.rows.size(), 5u);
  EXPECT_EQ(r.rows[0][0].AsString(), "Anna");
  EXPECT_EQ(r.rows[0][1].AsString(), "Marketing");
}

TEST_F(SqlE2eTest, LeftJoinProducesNulls) {
  QueryResult r = MustQuery(
      "SELECT p.name, s.discount FROM products p "
      "LEFT JOIN sales s ON p.productId = s.productId AND s.units > 100");
  // No sale has units > 100, so each product pads with NULL.
  ASSERT_EQ(r.rows.size(), 3u);
  for (const Row& row : r.rows) {
    EXPECT_TRUE(row[1].IsNull());
  }
}

TEST_F(SqlE2eTest, CrossJoinCommaSyntax) {
  QueryResult r = MustQuery("SELECT * FROM depts, products");
  EXPECT_EQ(r.rows.size(), 9u);
}

TEST_F(SqlE2eTest, UnionDistinctAndAll) {
  QueryResult distinct = MustQuery(
      "SELECT deptno FROM emps UNION SELECT deptno FROM depts");
  EXPECT_EQ(distinct.rows.size(), 3u);
  QueryResult all = MustQuery(
      "SELECT deptno FROM emps UNION ALL SELECT deptno FROM depts");
  EXPECT_EQ(all.rows.size(), 8u);
}

TEST_F(SqlE2eTest, IntersectAndExcept) {
  QueryResult inter = MustQuery(
      "SELECT deptno FROM emps INTERSECT SELECT deptno FROM depts");
  EXPECT_EQ(inter.rows.size(), 3u);
  QueryResult except = MustQuery(
      "SELECT deptno FROM depts EXCEPT SELECT deptno FROM emps WHERE "
      "deptno < 25");
  ASSERT_EQ(except.rows.size(), 1u);
  EXPECT_EQ(except.rows[0][0].AsInt(), 30);
}

TEST_F(SqlE2eTest, SubqueryInFrom) {
  QueryResult r = MustQuery(
      "SELECT t.name FROM (SELECT name, salary FROM emps "
      "WHERE salary > 8000) AS t ORDER BY t.name");
  EXPECT_EQ(r.rows.size(), 3u);
}

TEST_F(SqlE2eTest, CaseExpression) {
  QueryResult r = MustQuery(
      "SELECT name, CASE WHEN salary >= 10000 THEN 'high' ELSE 'low' END "
      "AS band FROM emps ORDER BY name");
  ASSERT_EQ(r.rows.size(), 5u);
  EXPECT_EQ(r.rows[0][1].AsString(), "low");  // Anna 9000
}

TEST_F(SqlE2eTest, CastAndArithmetic) {
  QueryResult r = MustQuery(
      "SELECT CAST(salary AS INTEGER) / 1000 AS k FROM emps "
      "WHERE name = 'Bill'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 10);
}

TEST_F(SqlE2eTest, InListAndBetweenAndLike) {
  EXPECT_EQ(MustQuery("SELECT * FROM emps WHERE deptno IN (10, 30)").rows.size(),
            3u);
  EXPECT_EQ(MustQuery(
                "SELECT * FROM emps WHERE salary BETWEEN 8000 AND 10000")
                .rows.size(),
            3u);
  EXPECT_EQ(MustQuery("SELECT * FROM emps WHERE name LIKE '%ill'").rows.size(),
            1u);
  EXPECT_EQ(
      MustQuery("SELECT * FROM emps WHERE name NOT LIKE 'A%'").rows.size(),
      4u);
}

TEST_F(SqlE2eTest, SelectDistinct) {
  QueryResult r = MustQuery("SELECT DISTINCT deptno FROM emps");
  EXPECT_EQ(r.rows.size(), 3u);
}

TEST_F(SqlE2eTest, ValuesClause) {
  QueryResult r = MustQuery("VALUES (1, 'a'), (2, 'b')");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[1][1].AsString(), "b");
}

TEST_F(SqlE2eTest, SelectWithoutFrom) {
  QueryResult r = MustQuery("SELECT 1 + 2 AS three");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);
}

TEST_F(SqlE2eTest, WindowFunction) {
  QueryResult r = MustQuery(
      "SELECT name, deptno, SUM(salary) OVER (PARTITION BY deptno) AS "
      "dept_total FROM emps ORDER BY name");
  ASSERT_EQ(r.rows.size(), 5u);
  // Anna is alone in dept 30.
  EXPECT_EQ(r.rows[0][0].AsString(), "Anna");
  EXPECT_DOUBLE_EQ(r.rows[0][2].AsDouble(), 9000.0);
  // Bill shares dept 10 with Theodore: 10000 + 11500.
  EXPECT_EQ(r.rows[1][0].AsString(), "Bill");
  EXPECT_DOUBLE_EQ(r.rows[1][2].AsDouble(), 21500.0);
}

TEST_F(SqlE2eTest, WindowRunningSum) {
  QueryResult r = MustQuery(
      "SELECT saleid, SUM(units) OVER (ORDER BY saleid "
      "ROWS UNBOUNDED PRECEDING) AS running FROM sales ORDER BY saleid");
  ASSERT_EQ(r.rows.size(), 6u);
  EXPECT_EQ(r.rows[0][1].AsInt(), 3);
  EXPECT_EQ(r.rows[5][1].AsInt(), 26);
}

// ------------------------------ error paths -------------------------------

TEST_F(SqlE2eTest, UnknownTableIsValidationError) {
  Status st = QueryError("SELECT * FROM nonexistent");
  EXPECT_EQ(st.code(), StatusCode::kValidationError);
}

TEST_F(SqlE2eTest, UnknownColumnIsValidationError) {
  Status st = QueryError("SELECT bogus FROM emps");
  EXPECT_EQ(st.code(), StatusCode::kValidationError);
}

TEST_F(SqlE2eTest, AmbiguousColumnIsError) {
  Status st = QueryError(
      "SELECT deptno FROM emps JOIN depts ON emps.deptno = depts.deptno");
  EXPECT_EQ(st.code(), StatusCode::kValidationError);
}

TEST_F(SqlE2eTest, AggregateInWhereIsError) {
  Status st = QueryError("SELECT * FROM emps WHERE COUNT(*) > 1");
  EXPECT_EQ(st.code(), StatusCode::kValidationError);
}

TEST_F(SqlE2eTest, NonGroupedColumnIsError) {
  Status st = QueryError("SELECT name, COUNT(*) FROM emps GROUP BY deptno");
  EXPECT_EQ(st.code(), StatusCode::kValidationError);
}

TEST_F(SqlE2eTest, SyntaxErrorReported) {
  Status st = QueryError("SELECT FROM WHERE");
  EXPECT_EQ(st.code(), StatusCode::kParseError);
}

TEST_F(SqlE2eTest, StreamOnTableIsError) {
  Status st = QueryError("SELECT STREAM * FROM emps");
  EXPECT_EQ(st.code(), StatusCode::kValidationError);
}

TEST_F(SqlE2eTest, MismatchedUnionIsError) {
  Status st = QueryError("SELECT deptno FROM emps UNION SELECT * FROM depts");
  EXPECT_EQ(st.code(), StatusCode::kValidationError);
}

}  // namespace
}  // namespace calcite
