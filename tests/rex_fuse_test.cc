// Directed tests of the tree-fusing bytecode layer (rex/rex_fuse.h).
//
// Golden-disassembly tests pin the exact programs the lowerer emits for the
// canonical shapes — an arithmetic chain, a NULL-propagating compare, an
// AND of range bounds folding into one interval test, widening/narrowing
// casts — so a lowering regression shows up as a readable bytecode diff,
// not a downstream numeric mismatch. Register-reuse tests assert the
// Sethi-Ullman property directly: registers scale with tree *depth*, never
// tree *size*. Fallback tests lock the whole-tree rule: any unsupported
// operator anywhere in the tree makes Compile return nullptr, and FusedExpr
// transparently routes such trees (and fusion-disabled callers) through the
// per-node path with identical results. The randomized three-way
// differential lives in rex_kernel_fuzz_test.cc; this file is the directed
// complement.

#include "rex/rex_fuse.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exec/arena.h"
#include "exec/column_batch.h"
#include "rex/rex_builder.h"
#include "rex/rex_columnar.h"
#include "type/rel_data_type.h"
#include "type/value.h"

namespace calcite {
namespace {

// Input layout shared by every test, mirroring the fuzz fixture:
//   $0 id INT NOT NULL, $1 a INT?, $2 b INT?, $3 x DOUBLE?,
//   $4 s VARCHAR?, $5 f BOOLEAN?
class RexFuseTest : public ::testing::Test {
 protected:
  RexFuseTest() {
    int_t_ = tf_.CreateSqlType(SqlTypeName::kInteger);
    int_null_ = tf_.CreateSqlType(SqlTypeName::kInteger, -1, true);
    dbl_null_ = tf_.CreateSqlType(SqlTypeName::kDouble, -1, true);
    str_null_ = tf_.CreateSqlType(SqlTypeName::kVarchar, 32, true);
    bool_null_ = tf_.CreateSqlType(SqlTypeName::kBoolean, -1, true);
    row_type_ = tf_.CreateStructType(
        {"id", "a", "b", "x", "s", "f"},
        {int_t_, int_null_, int_null_, dbl_null_, str_null_, bool_null_});
    phys_ = {PhysType::kInt64,  PhysType::kInt64, PhysType::kInt64,
             PhysType::kDouble, PhysType::kString, PhysType::kBool};
  }

  RexNodePtr Call(OpKind op, std::vector<RexNodePtr> ops) {
    auto call = rex_.MakeCall(op, std::move(ops));
    EXPECT_TRUE(call.ok()) << call.status().ToString();
    return call.value();
  }

  std::shared_ptr<const FuseProgram> Compile(const RexNodePtr& node) {
    return FuseProgram::Compile(node, phys_);
  }

  void ExpectDisasm(const RexNodePtr& node, const std::string& want) {
    auto program = Compile(node);
    ASSERT_NE(program, nullptr) << node->ToString();
    EXPECT_EQ(program->Disassemble(), want) << node->ToString();
  }

  TypeFactory tf_;
  RexBuilder rex_;
  RelDataTypePtr int_t_, int_null_, dbl_null_, str_null_, bool_null_;
  RelDataTypePtr row_type_;
  std::vector<PhysType> phys_;
};

// ------------------------------ golden listings -----------------------------

TEST_F(RexFuseTest, DisassembleArithChain) {
  // ($0 + $1) * 2 > $2 — the canonical fused filter. The literal 2 folds
  // into the multiply (no broadcast load), and the whole tree runs in two
  // registers.
  RexNodePtr sum = Call(OpKind::kPlus, {rex_.MakeInputRef(0, int_null_),
                                        rex_.MakeInputRef(1, int_null_)});
  RexNodePtr mul = Call(OpKind::kTimes, {sum, rex_.MakeIntLiteral(2)});
  RexNodePtr pred =
      Call(OpKind::kGreaterThan, {mul, rex_.MakeInputRef(2, int_null_)});
  ExpectDisasm(pred,
               "r0 = col $0 i64\n"
               "r1 = col $1 i64\n"
               "r1 = add.i64 r0 r1\n"
               "r1 = mul.i64 r1 #2\n"
               "r0 = col $2 i64\n"
               "r0 = gt.i64 r1 r0\n"
               "ret r0 bool regs=2\n");
}

TEST_F(RexFuseTest, DisassembleNullPropagatingCompare) {
  // $3 > NULL stays on the general compare path: the NULL literal becomes a
  // typed all-NULL register and the strict compare's null-fold makes every
  // row NULL — identical to the per-node LiteralDense + CompareDense pair.
  RexNodePtr pred =
      Call(OpKind::kGreaterThan,
           {rex_.MakeInputRef(3, dbl_null_), rex_.MakeNullLiteral(dbl_null_)});
  ExpectDisasm(pred,
               "r0 = col $3 f64\n"
               "r1 = null.f64\n"
               "r1 = gt.f64 r0 r1\n"
               "ret r1 bool regs=2\n");

  // Mixed-width compare widens the int64 side first; the widen is the one
  // case that must NOT reuse its operand register in place (the i64 and f64
  // views would alias through differently-typed pointers).
  RexNodePtr mixed = Call(OpKind::kLessThan, {rex_.MakeInputRef(1, int_null_),
                                              rex_.MakeInputRef(3, dbl_null_)});
  ExpectDisasm(mixed,
               "r0 = col $1 i64\n"
               "r1 = col $3 f64\n"
               "r2 = i64tof64 r0\n"
               "r1 = lt.f64 r2 r1\n"
               "ret r1 bool regs=3\n");
}

TEST_F(RexFuseTest, DisassembleAndOfRangesFusesInterval) {
  // $1 >= 2 AND $5 AND $1 < 9: the two bounds pair across the unrelated
  // middle conjunct into a single inrange instruction — one load, one
  // interval test — instead of two compares plus an AND.
  RexNodePtr lo = Call(OpKind::kGreaterThanOrEqual,
                       {rex_.MakeInputRef(1, int_null_),
                        rex_.MakeIntLiteral(2)});
  RexNodePtr hi = Call(OpKind::kLessThan, {rex_.MakeInputRef(1, int_null_),
                                           rex_.MakeIntLiteral(9)});
  RexNodePtr pred =
      rex_.MakeAnd({lo, rex_.MakeInputRef(5, bool_null_), hi});
  ExpectDisasm(pred,
               "r0 = col $1 i64\n"
               "r0 = inrange.i64 r0 [2, 9)\n"
               "r1 = col $5 bool\n"
               "r1 = and r0 r1\n"
               "ret r1 bool regs=2\n");
}

TEST_F(RexFuseTest, DisassembleCasts) {
  ExpectDisasm(rex_.MakeCast(dbl_null_, rex_.MakeInputRef(1, int_null_)),
               "r0 = col $1 i64\n"
               "r1 = i64tof64 r0\n"
               "ret r1 f64 regs=2\n");
  ExpectDisasm(rex_.MakeCast(int_null_, rex_.MakeInputRef(3, dbl_null_)),
               "r0 = col $3 f64\n"
               "r1 = f64toi64 r0\n"
               "ret r1 i64 regs=2\n");
  // Identity casts vanish entirely: the program is a bare column load.
  ExpectDisasm(rex_.MakeCast(int_null_, rex_.MakeInputRef(1, int_null_)),
               "r0 = col $1 i64\n"
               "ret r0 i64 regs=1\n");
}

// ------------------------------ register reuse ------------------------------

TEST_F(RexFuseTest, RegistersScaleWithDepthNotSize) {
  // A left-deep chain of N adds stays at two registers no matter how long.
  RexNodePtr chain = rex_.MakeInputRef(0, int_null_);
  for (int i = 0; i < 40; ++i) {
    chain = Call(OpKind::kPlus, {chain, rex_.MakeInputRef(i % 3, int_null_)});
  }
  auto program = Compile(chain);
  ASSERT_NE(program, nullptr);
  EXPECT_EQ(program->num_registers(), 2);
  EXPECT_EQ(program->instrs().size(), 81u);  // 41 loads + 40 adds

  // A balanced tree over 2^d leaves (post-order, left first) needs d + 1
  // registers — depth, not the 2^(d+1) - 1 node count.
  for (int depth = 1; depth <= 4; ++depth) {
    std::vector<RexNodePtr> level;
    for (int i = 0; i < (1 << depth); ++i) {
      level.push_back(rex_.MakeInputRef(i % 3, int_null_));
    }
    while (level.size() > 1) {
      std::vector<RexNodePtr> next;
      for (size_t i = 0; i + 1 < level.size(); i += 2) {
        next.push_back(Call(OpKind::kPlus, {level[i], level[i + 1]}));
      }
      level = std::move(next);
    }
    auto bal = Compile(level[0]);
    ASSERT_NE(bal, nullptr) << "depth " << depth;
    EXPECT_EQ(bal->num_registers(), depth + 1) << "depth " << depth;
    EXPECT_EQ(bal->instrs().size(), size_t{(2u << depth) - 1})
        << "depth " << depth;
  }
}

TEST_F(RexFuseTest, WideAndFoldsIncrementally) {
  // An N-way AND lowers one conjunct at a time into an accumulator, so its
  // register demand is that of the widest single conjunct — not N.
  std::vector<RexNodePtr> conjuncts;
  for (int i = 0; i < 12; ++i) {
    conjuncts.push_back(Call(OpKind::kGreaterThan,
                             {rex_.MakeInputRef(i % 3, int_null_),
                              rex_.MakeIntLiteral(i)}));
  }
  auto program = Compile(rex_.MakeAnd(std::move(conjuncts)));
  ASSERT_NE(program, nullptr);
  EXPECT_LE(program->num_registers(), 3);
}

// -------------------------------- fallback ----------------------------------

TEST_F(RexFuseTest, UnsupportedTreesDoNotCompile) {
  // Unsupported operator (ABS) anywhere in the tree: whole-tree fallback,
  // even when the rest would fuse.
  RexNodePtr abs = Call(OpKind::kAbs, {rex_.MakeInputRef(1, int_null_)});
  EXPECT_EQ(Compile(abs), nullptr);
  EXPECT_EQ(Compile(Call(OpKind::kGreaterThan, {abs, rex_.MakeIntLiteral(0)})),
            nullptr);

  // Strings never lower.
  EXPECT_EQ(Compile(Call(OpKind::kEquals, {rex_.MakeInputRef(4, str_null_),
                                           rex_.MakeStringLiteral("a")})),
            nullptr);

  // Division fuses only with a direct non-NULL non-zero literal divisor —
  // a column divisor or a zero literal could raise at runtime, which the
  // total bytecode interpreter must never do.
  EXPECT_EQ(Compile(Call(OpKind::kDivide, {rex_.MakeInputRef(1, int_null_),
                                           rex_.MakeInputRef(2, int_null_)})),
            nullptr);
  EXPECT_EQ(Compile(Call(OpKind::kDivide, {rex_.MakeInputRef(1, int_null_),
                                           rex_.MakeIntLiteral(0)})),
            nullptr);

  // Bool-vs-bool comparison stays per-node.
  EXPECT_EQ(Compile(Call(OpKind::kEquals, {rex_.MakeInputRef(5, bool_null_),
                                           rex_.MakeBoolLiteral(true)})),
            nullptr);
}

TEST_F(RexFuseTest, FusedExprFallsBackWithIdenticalResults) {
  // Rows with NULLs in every nullable column position.
  RowBatch rows;
  for (int i = 0; i < 50; ++i) {
    Row row;
    row.push_back(Value::Int(i));
    row.push_back(i % 5 == 0 ? Value::Null() : Value::Int(i % 7 - 3));
    row.push_back(i % 4 == 0 ? Value::Null() : Value::Int(i % 5 - 2));
    row.push_back(i % 6 == 0 ? Value::Null() : Value::Double(i * 0.25 - 3));
    row.push_back(i % 3 == 0 ? Value::Null() : Value::String("s"));
    row.push_back(i % 7 == 0 ? Value::Null() : Value::Bool(i % 2 == 0));
    rows.push_back(std::move(row));
  }
  auto cols = RowsToColumns(rows, *row_type_);
  ASSERT_TRUE(cols.ok()) << cols.status().ToString();
  const ColumnBatch& in = cols.value();

  // One fusible tree, one tree that must fall back (ABS inside).
  RexNodePtr fusible =
      Call(OpKind::kPlus, {rex_.MakeInputRef(1, int_null_),
                           rex_.MakeInputRef(2, int_null_)});
  RexNodePtr fallback =
      Call(OpKind::kPlus, {Call(OpKind::kAbs, {rex_.MakeInputRef(1, int_null_)}),
                           rex_.MakeInputRef(2, int_null_)});
  ASSERT_NE(Compile(fusible), nullptr);
  ASSERT_EQ(Compile(fallback), nullptr);

  for (const RexNodePtr& expr : {fusible, fallback}) {
    // enable_fusion on and off, against the per-node reference.
    ColumnBatch want;
    want.arena = std::make_shared<Arena>();
    want.ShareStorage(in);
    want.num_rows = in.ActiveCount();
    ASSERT_TRUE(RexColumnar::AppendEvalColumn(expr, in, &want).ok());
    for (bool enable_fusion : {true, false}) {
      ColumnBatch got;
      got.arena = std::make_shared<Arena>();
      got.ShareStorage(in);
      got.num_rows = in.ActiveCount();
      FusedExpr fused(expr, enable_fusion);
      ASSERT_TRUE(fused.AppendEvalColumn(in, &got).ok());
      ASSERT_EQ(got.cols.size(), 1u);
      for (size_t k = 0; k < in.ActiveCount(); ++k) {
        EXPECT_EQ(got.cols[0].GetValue(k).ToString(),
                  want.cols[0].GetValue(k).ToString())
            << expr->ToString() << " fusion=" << enable_fusion << " row " << k;
      }
    }
  }
}

// Range fusion of pushed scan predicates rides the same lowering; lock the
// split logic here next to the bytecode tests it mirrors.
TEST_F(RexFuseTest, FuseScanRangesPairsBounds) {
  auto pred = [](ScanPredicate::Kind kind, int column, Value lit) {
    ScanPredicate p;
    p.kind = kind;
    p.column = column;
    p.literal = std::move(lit);
    return p;
  };
  ScanPredicateList preds;
  preds.push_back(
      pred(ScanPredicate::Kind::kGreaterThanOrEqual, 0, Value::Int(10)));
  preds.push_back(pred(ScanPredicate::Kind::kEquals, 2, Value::Int(1)));
  preds.push_back(pred(ScanPredicate::Kind::kLessThan, 0, Value::Int(20)));
  preds.push_back(
      pred(ScanPredicate::Kind::kGreaterThan, 1, Value::Double(0.5)));

  std::vector<FusedScanRange> ranges;
  ScanPredicateList rest;
  FuseScanRanges(std::move(preds), &ranges, &rest);

  // $0's bounds pair across the unrelated equality; the equality and the
  // partnerless $1 bound stay behind in order.
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].lower.column, 0);
  EXPECT_EQ(ranges[0].lower.kind, ScanPredicate::Kind::kGreaterThanOrEqual);
  EXPECT_EQ(ranges[0].upper.kind, ScanPredicate::Kind::kLessThan);
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0].kind, ScanPredicate::Kind::kEquals);
  EXPECT_EQ(rest[1].column, 1);

  // NULL-literal bounds never fuse (a NULL comparison passes nothing, and
  // the scalar NarrowByScanPredicate path owns that semantics).
  ScanPredicateList with_null;
  with_null.push_back(
      pred(ScanPredicate::Kind::kGreaterThanOrEqual, 0, Value::Null()));
  with_null.push_back(pred(ScanPredicate::Kind::kLessThan, 0, Value::Int(3)));
  ranges.clear();
  rest.clear();
  FuseScanRanges(std::move(with_null), &ranges, &rest);
  EXPECT_TRUE(ranges.empty());
  EXPECT_EQ(rest.size(), 2u);
}

}  // namespace
}  // namespace calcite
