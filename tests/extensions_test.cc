#include <gtest/gtest.h>

#include "materialize/materialized_views.h"
#include "rel/rel_writer.h"
#include "stream/stream.h"
#include "test_schema.h"
#include "tools/frameworks.h"

namespace calcite {
namespace {

// -------------------------------- streaming --------------------------------

SchemaPtr MakeStreamCatalog(std::shared_ptr<stream::StreamTable>* orders_out) {
  TypeFactory tf;
  auto ts_t = tf.CreateSqlType(SqlTypeName::kTimestamp);
  auto int_t = tf.CreateSqlType(SqlTypeName::kInteger);
  auto row = tf.CreateStructType({"rowtime", "productId", "units"},
                                 {ts_t, int_t, int_t});
  auto orders = std::make_shared<stream::StreamTable>(row, 0);
  *orders_out = orders;
  auto schema = std::make_shared<Schema>();
  schema->AddTable("Orders", orders);
  return schema;
}

constexpr int64_t kHour = 3600 * 1000;

TEST(StreamTest, StreamKeywordSelectsIncomingRows) {
  std::shared_ptr<stream::StreamTable> orders;
  SchemaPtr schema = MakeStreamCatalog(&orders);
  Connection conn{Connection::Config{schema}};

  // The paper's first streaming query (§7.2).
  const std::string sql =
      "SELECT STREAM rowtime, productId, units FROM Orders WHERE units > 25";

  std::vector<Row> events;
  for (int i = 0; i < 40; ++i) {
    events.push_back({Value::Int(i * 60000), Value::Int(i % 5),
                      Value::Int(i)});
  }
  stream::StreamExecutor executor(&conn, sql);
  int emissions = 0;
  auto emitted = executor.Run(orders.get(), events, 10,
                              [&](const std::vector<Row>&) { ++emissions; });
  ASSERT_TRUE(emitted.ok()) << emitted.status().ToString();
  // units 26..39 pass the filter.
  EXPECT_EQ(emitted.value().size(), 14u);
  // Results appeared incrementally across batches, not all at the end.
  EXPECT_GE(emissions, 2);
}

TEST(StreamTest, TumblingWindowAggregation) {
  std::shared_ptr<stream::StreamTable> orders;
  SchemaPtr schema = MakeStreamCatalog(&orders);
  Connection conn{Connection::Config{schema}};

  // The paper's tumbling-window query (§7.2).
  const std::string sql =
      "SELECT STREAM TUMBLE_END(rowtime, INTERVAL '1' HOUR) AS rowtime, "
      "productId, COUNT(*) AS c, SUM(units) AS units "
      "FROM Orders "
      "GROUP BY TUMBLE(rowtime, INTERVAL '1' HOUR), productId";

  // Two products alternating over three hours, 6 events/hour.
  std::vector<Row> events;
  for (int i = 0; i < 18; ++i) {
    events.push_back({Value::Int(i * (kHour / 6)), Value::Int(i % 2),
                      Value::Int(10)});
  }
  for (Row& event : events) {
    ASSERT_TRUE(orders->Append(event).ok());
  }
  auto result = conn.Query(sql);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // 3 hours x 2 products.
  ASSERT_EQ(result.value().rows.size(), 6u);
  for (const Row& row : result.value().rows) {
    EXPECT_EQ(row[2].AsInt(), 3);   // 3 events per product per hour
    EXPECT_EQ(row[3].AsInt(), 30);  // 3 * 10 units
    // TUMBLE_END is a full hour boundary.
    EXPECT_EQ(row[0].AsInt() % kHour, 0);
  }
}

TEST(StreamTest, NonMonotonicGroupByRejected) {
  std::shared_ptr<stream::StreamTable> orders;
  SchemaPtr schema = MakeStreamCatalog(&orders);
  Connection conn{Connection::Config{schema}};
  // §7.2: windowed streaming aggregation needs a monotonic group expression.
  auto result = conn.Query(
      "SELECT STREAM productId, COUNT(*) FROM Orders GROUP BY productId");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kValidationError);
}

TEST(StreamTest, SlidingWindowOverStream) {
  std::shared_ptr<stream::StreamTable> orders;
  SchemaPtr schema = MakeStreamCatalog(&orders);
  Connection conn{Connection::Config{schema}};
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(orders
                    ->Append({Value::Int(i * (kHour / 2)), Value::Int(1),
                              Value::Int(i + 1)})
                    .ok());
  }
  // The paper's sliding-window query (§7.2): last hour per product.
  auto result = conn.Query(
      "SELECT STREAM rowtime, productId, units, "
      "SUM(units) OVER (PARTITION BY productId ORDER BY rowtime "
      "RANGE INTERVAL '1' HOUR PRECEDING) AS unitsLastHour FROM Orders");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().rows.size(), 6u);
  // Row i sums units of rows within [t_i - 1h, t_i]: itself and the two
  // preceding half-hour events.
  EXPECT_EQ(result.value().rows[0][3].AsInt(), 1);
  EXPECT_EQ(result.value().rows[2][3].AsInt(), 1 + 2 + 3);
  EXPECT_EQ(result.value().rows[5][3].AsInt(), 4 + 5 + 6);
}

TEST(StreamTest, OutOfOrderEventRejected) {
  std::shared_ptr<stream::StreamTable> orders;
  MakeStreamCatalog(&orders);
  ASSERT_TRUE(
      orders->Append({Value::Int(1000), Value::Int(1), Value::Int(1)}).ok());
  Status st =
      orders->Append({Value::Int(500), Value::Int(1), Value::Int(1)});
  EXPECT_FALSE(st.ok());
}

// ---------------------------- materialized views ---------------------------

TEST(MaterializeTest, ExactSubstitution) {
  SchemaPtr schema = testing::MakeTestSchema();
  MaterializationCatalog catalog;
  {
    Connection loader{Connection::Config{schema}};
    ASSERT_TRUE(catalog
                    .Register(&loader, "mv_sales_by_product",
                              "SELECT productId, COUNT(*) AS c FROM sales "
                              "GROUP BY productId")
                    .ok());
  }
  Connection::Config config{schema};
  config.materializations = &catalog;
  Connection conn(config);

  auto plan = conn.Explain(
      "SELECT productId, COUNT(*) AS c FROM sales GROUP BY productId", true);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan.value().find("mv_sales_by_product"), std::string::npos)
      << plan.value();
  EXPECT_EQ(plan.value().find("table=[sales]"), std::string::npos)
      << plan.value();

  auto rows = conn.Query(
      "SELECT productId, COUNT(*) AS c FROM sales GROUP BY productId");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().rows.size(), 3u);
}

TEST(MaterializeTest, ResidualFilterRewrite) {
  SchemaPtr schema = testing::MakeTestSchema();
  MaterializationCatalog catalog;
  {
    Connection loader{Connection::Config{schema}};
    ASSERT_TRUE(catalog
                    .Register(&loader, "mv_high_units",
                              "SELECT * FROM sales WHERE units > 2")
                    .ok());
  }
  Connection::Config config{schema};
  config.materializations = &catalog;
  Connection conn(config);

  // Query condition = view condition AND residual.
  auto plan = conn.Explain(
      "SELECT * FROM sales WHERE units > 2 AND productId = 2", true);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan.value().find("mv_high_units"), std::string::npos)
      << plan.value();

  auto rows =
      conn.Query("SELECT * FROM sales WHERE units > 2 AND productId = 2");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().rows.size(), 2u);
}

TEST(MaterializeTest, AggregateRollup) {
  SchemaPtr schema = testing::MakeTestSchema();
  MaterializationCatalog catalog;
  {
    Connection loader{Connection::Config{schema}};
    // Finer-grained view: grouped by (productId, saleid).
    ASSERT_TRUE(catalog
                    .Register(&loader, "mv_fine",
                              "SELECT productId, saleid, COUNT(*) AS c, "
                              "SUM(units) AS u FROM sales "
                              "GROUP BY productId, saleid")
                    .ok());
  }
  Connection::Config config{schema};
  config.materializations = &catalog;
  Connection conn(config);

  // Coarser query rolls up from the view.
  const std::string sql =
      "SELECT productId, COUNT(*) AS c, SUM(units) AS u FROM sales "
      "GROUP BY productId";
  auto plan = conn.Explain(sql, true);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan.value().find("mv_fine"), std::string::npos) << plan.value();

  auto rows = conn.Query(sql);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows.value().rows.size(), 3u);
  int64_t total_units = 0;
  int64_t total_count = 0;
  for (const Row& row : rows.value().rows) {
    total_count += row[1].AsInt();
    total_units += row[2].AsInt();
  }
  EXPECT_EQ(total_count, 6);
  EXPECT_EQ(total_units, 26);
}

TEST(MaterializeTest, NonMatchingViewIsIgnored) {
  SchemaPtr schema = testing::MakeTestSchema();
  MaterializationCatalog catalog;
  {
    Connection loader{Connection::Config{schema}};
    ASSERT_TRUE(catalog
                    .Register(&loader, "mv_unrelated",
                              "SELECT * FROM depts WHERE deptno > 15")
                    .ok());
  }
  Connection::Config config{schema};
  config.materializations = &catalog;
  Connection conn(config);
  auto plan = conn.Explain("SELECT * FROM sales WHERE units > 3", true);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().find("mv_unrelated"), std::string::npos)
      << plan.value();
}

TEST(MaterializeTest, LatticeTilesAnswerStarQueries) {
  SchemaPtr schema = testing::MakeTestSchema();
  MaterializationCatalog catalog;
  Lattice lattice(
      "SELECT name, saleid, units FROM sales JOIN products USING (productId)",
      {"name", "saleid"}, "units");
  {
    Connection loader{Connection::Config{schema}};
    ASSERT_TRUE(
        lattice.BuildTile(&loader, &catalog, {"name", "saleid"}).ok());
    ASSERT_TRUE(lattice.BuildTile(&loader, &catalog, {"name"}).ok());
  }
  // Tile selection prefers the smallest covering tile.
  EXPECT_EQ(lattice.FindCoveringTile({"name"}), "tile_name");
  EXPECT_EQ(lattice.FindCoveringTile({"name", "saleid"}),
            "tile_name_saleid");
  EXPECT_EQ(lattice.FindCoveringTile({"units"}), "");

  Connection::Config config{schema};
  config.materializations = &catalog;
  Connection conn(config);
  // The rollup over the star query should hit a tile instead of the join.
  const std::string sql =
      "SELECT name, COUNT(*) AS cnt, SUM(units) AS sm FROM "
      "(SELECT name, saleid, units FROM sales JOIN products "
      "USING (productId)) AS fact GROUP BY name";
  auto plan = conn.Explain(sql, true);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan.value().find("tile_"), std::string::npos) << plan.value();

  auto rows = conn.Query(sql);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().rows.size(), 3u);
}

// --------------------------------- geospatial ------------------------------

TEST(GeoTest, AmsterdamQueryFromThePaper) {
  // §7.3's example: find the country containing Amsterdam.
  TypeFactory tf;
  auto str_t = tf.CreateSqlType(SqlTypeName::kVarchar, 64);
  auto row = tf.CreateStructType({"name", "boundary"}, {str_t, str_t});
  std::vector<Row> rows = {
      {Value::String("Netherlands"),
       Value::String("POLYGON ((3.3 50.7, 7.2 50.7, 7.2 53.6, 3.3 53.6, "
                     "3.3 50.7))")},
      {Value::String("Belgium"),
       Value::String("POLYGON ((2.5 49.5, 6.4 49.5, 6.4 51.5, 2.5 51.5, "
                     "2.5 49.5))")},
  };
  auto schema = std::make_shared<Schema>();
  schema->AddTable("country", std::make_shared<MemTable>(row, rows));
  Connection conn{Connection::Config{schema}};

  auto result = conn.Query(
      "SELECT name FROM ("
      "  SELECT name, "
      "  ST_GeomFromText('POLYGON ((4.82 52.43, 4.97 52.43, 4.97 52.33, "
      "4.82 52.33, 4.82 52.43))') AS amsterdam, "
      "  ST_GeomFromText(boundary) AS country "
      "  FROM country"
      ") AS t WHERE ST_Contains(country, amsterdam)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().rows.size(), 1u);
  EXPECT_EQ(result.value().rows[0][0].AsString(), "Netherlands");
}

TEST(GeoTest, DistanceAndArea) {
  Connection conn{Connection::Config{std::make_shared<Schema>()}};
  auto result = conn.Query(
      "SELECT ST_Distance(ST_MakePoint(0, 0), ST_MakePoint(3, 4)) AS d, "
      "ST_Area(ST_GeomFromText('POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))')) AS a");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_DOUBLE_EQ(result.value().rows[0][0].AsDouble(), 5.0);
  EXPECT_DOUBLE_EQ(result.value().rows[0][1].AsDouble(), 16.0);
}

}  // namespace
}  // namespace calcite
