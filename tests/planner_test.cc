#include <gtest/gtest.h>

#include "adapters/enumerable/enumerable_rules.h"
#include "plan/hep_planner.h"
#include "plan/programs.h"
#include "plan/volcano_planner.h"
#include "rel/rel_writer.h"
#include "rules/core_rules.h"
#include "test_schema.h"
#include "tools/rel_builder.h"

namespace calcite {
namespace {

using testing::MakeTestSchema;

class PlannerTest : public ::testing::Test {
 protected:
  SchemaPtr schema_ = MakeTestSchema();
  PlannerContext context_;

  /// The Figure 4 query: sales JOIN products ON productId WHERE
  /// discount IS NOT NULL, grouped by product name.
  RelNodePtr BuildFigure4Plan() {
    RelBuilder b(schema_);
    b.Scan("sales").Scan("products");
    RexNodePtr cond =
        b.Equals(b.Field(1, "productId"), b.Field(0, "productId"));
    b.Join(JoinType::kInner, cond);
    b.Filter(b.Call(OpKind::kIsNotNull, {b.Field("discount")}));
    b.Aggregate(b.GroupKey({"name"}), {b.Count(false, "c")});
    auto result = b.Build();
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? result.value() : nullptr;
  }
};

TEST_F(PlannerTest, HepPlannerPushesFilterIntoJoin) {
  RelNodePtr plan = BuildFigure4Plan();
  ASSERT_NE(plan, nullptr);

  HepPlanner planner(StandardLogicalRules(), &context_);
  auto optimized = planner.Optimize(plan);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  EXPECT_GT(planner.rule_fire_count(), 0);

  // After FilterIntoJoinRule the filter must sit below the join, directly
  // over the sales scan (Figure 4b).
  std::string explain = ExplainPlan(optimized.value());
  size_t join_pos = explain.find("LogicalJoin");
  size_t filter_pos = explain.find("LogicalFilter");
  ASSERT_NE(join_pos, std::string::npos) << explain;
  ASSERT_NE(filter_pos, std::string::npos) << explain;
  EXPECT_GT(filter_pos, join_pos) << explain;
}

TEST_F(PlannerTest, VolcanoProducesExecutableEnumerablePlan) {
  RelNodePtr plan = BuildFigure4Plan();
  ASSERT_NE(plan, nullptr);

  std::vector<RelOptRulePtr> rules = StandardLogicalRules();
  for (auto& rule : EnumerableConverterRules()) rules.push_back(rule);

  VolcanoPlanner planner(rules, &context_);
  auto optimized =
      planner.Optimize(plan, RelTraitSet(Convention::Enumerable()));
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  EXPECT_FALSE(planner.best_cost().IsInfinite());

  auto rows = optimized.value()->Execute();
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  // sales has 4 rows with non-null discount: products 1 (x1), 2 (x2), 3 (x1).
  ASSERT_EQ(rows.value().size(), 3u);
  int64_t total = 0;
  for (const Row& row : rows.value()) {
    ASSERT_EQ(row.size(), 2u);
    total += row[1].AsInt();
  }
  EXPECT_EQ(total, 4);
}

TEST_F(PlannerTest, VolcanoMatchesUnoptimizedResults) {
  // Plan-invariance: the optimized plan returns the same rows as naive
  // enumerable conversion without logical rewrites.
  RelNodePtr plan = BuildFigure4Plan();
  ASSERT_NE(plan, nullptr);

  VolcanoPlanner naive(EnumerableConverterRules(), &context_);
  auto naive_plan = naive.Optimize(plan, RelTraitSet(Convention::Enumerable()));
  ASSERT_TRUE(naive_plan.ok()) << naive_plan.status().ToString();
  auto naive_rows = naive_plan.value()->Execute();
  ASSERT_TRUE(naive_rows.ok());

  std::vector<RelOptRulePtr> rules = StandardLogicalRules();
  for (auto& rule : EnumerableConverterRules()) rules.push_back(rule);
  PlannerContext context2;
  VolcanoPlanner full(rules, &context2);
  auto full_plan = full.Optimize(plan, RelTraitSet(Convention::Enumerable()));
  ASSERT_TRUE(full_plan.ok()) << full_plan.status().ToString();
  auto full_rows = full_plan.value()->Execute();
  ASSERT_TRUE(full_rows.ok());

  auto sort_rows = [](std::vector<Row> rows) {
    std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
      return RowToString(a) < RowToString(b);
    });
    return rows;
  };
  EXPECT_EQ(sort_rows(naive_rows.value()).size(),
            sort_rows(full_rows.value()).size());
  auto a = sort_rows(naive_rows.value());
  auto b = sort_rows(full_rows.value());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(RowToString(a[i]), RowToString(b[i]));
  }
}

TEST_F(PlannerTest, StandardProgramRunsBothPhases) {
  RelNodePtr plan = BuildFigure4Plan();
  ASSERT_NE(plan, nullptr);
  Program program = Program::Standard(StandardLogicalRules(),
                                      EnumerableConverterRules(),
                                      RelTraitSet(Convention::Enumerable()));
  auto optimized = program.Run(plan, &context_);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  auto rows = optimized.value()->Execute();
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows.value().size(), 3u);
}

TEST_F(PlannerTest, DeltaModeStopsEarlierThanExhaustive) {
  // Join-reorder exploration on a 4-way join: the δ-threshold fixpoint
  // should fire no more rules than the exhaustive one.
  RelBuilder b(schema_);
  b.Scan("sales").Scan("products");
  b.Join(JoinType::kInner,
         b.Equals(b.Field(1, "productId"), b.Field(0, "productId")));
  b.Scan("emps");
  b.Join(JoinType::kInner, b.Equals(b.Field(1, "saleid"), b.Field(0, "empid")));
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  std::vector<RelOptRulePtr> rules = JoinReorderRules();
  for (auto& rule : EnumerableConverterRules()) rules.push_back(rule);

  PlannerContext c1;
  VolcanoPlanner::Options exhaustive_opts;
  exhaustive_opts.exhaustive = true;
  VolcanoPlanner exhaustive(rules, &c1, exhaustive_opts);
  auto p1 = exhaustive.Optimize(plan.value(),
                                RelTraitSet(Convention::Enumerable()));
  ASSERT_TRUE(p1.ok()) << p1.status().ToString();

  PlannerContext c2;
  VolcanoPlanner::Options delta_opts;
  delta_opts.exhaustive = false;
  delta_opts.cost_improvement_delta = 0.5;
  delta_opts.delta_window = 5;
  VolcanoPlanner delta(rules, &c2, delta_opts);
  auto p2 = delta.Optimize(plan.value(),
                           RelTraitSet(Convention::Enumerable()));
  ASSERT_TRUE(p2.ok()) << p2.status().ToString();

  EXPECT_LE(delta.rule_fire_count(), exhaustive.rule_fire_count());
  // Both must execute and agree on the result size.
  auto r1 = p1.value()->Execute();
  auto r2 = p2.value()->Execute();
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.value().size(), r2.value().size());
}

TEST_F(PlannerTest, EquivalenceSetsDeduplicate) {
  RelNodePtr plan = BuildFigure4Plan();
  std::vector<RelOptRulePtr> rules = StandardLogicalRules();
  for (auto& rule : JoinReorderRules()) rules.push_back(rule);
  for (auto& rule : EnumerableConverterRules()) rules.push_back(rule);
  VolcanoPlanner planner(rules, &context_);
  auto optimized =
      planner.Optimize(plan, RelTraitSet(Convention::Enumerable()));
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  // The memo must contain more expressions than sets (alternatives grouped
  // into equivalence classes).
  EXPECT_GT(planner.expr_count(), planner.set_count());
}

}  // namespace
}  // namespace calcite
