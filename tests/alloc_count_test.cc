// Asserts the columnar hot path's central memory claim: pulling a
// scan → filter → project → aggregate pipeline over ~100k rows performs no
// per-row heap allocation. Column storage is either a zero-copy view of the
// table's cached decomposition or bump-allocated from pooled arenas, so the
// allocation count of the whole drain is bounded by the number of batches
// (times a small constant), not the number of rows. The row path over the
// same plan boxes every row and is measured as the contrast.
//
// This test overrides the global operator new, so it must stay its own test
// binary (the per-file test executables guarantee that) and must not run
// under sanitizers, whose allocator interposition the override would fight.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "adapters/enumerable/enumerable_rels.h"
#include "rel/core.h"
#include "rex/rex_builder.h"
#include "tools/frameworks.h"

namespace {

std::atomic<size_t> g_alloc_count{0};
std::atomic<bool> g_counting{false};

void* CountedAlloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* ptr = std::malloc(size == 0 ? 1 : size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }

namespace calcite {
namespace {

constexpr size_t kRows = 100000;

/// Drains `puller`, counting heap allocations only inside the pull loop.
/// Returns {output rows, allocations}.
std::pair<size_t, size_t> DrainCounted(const RowBatchPuller& puller) {
  size_t out_rows = 0;
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  for (;;) {
    auto batch = puller();
    if (!batch.ok() || batch.value().empty()) break;
    out_rows += batch.value().size();
  }
  g_counting.store(false, std::memory_order_relaxed);
  return {out_rows, g_alloc_count.load(std::memory_order_relaxed)};
}

TEST(AllocCountTest, ColumnarHotPathDoesNoPerRowAllocation) {
  TypeFactory tf;
  RexBuilder rex;
  auto int_t = tf.CreateSqlType(SqlTypeName::kInteger);
  auto int_null = tf.CreateSqlType(SqlTypeName::kInteger, -1, true);
  auto dbl_null = tf.CreateSqlType(SqlTypeName::kDouble, -1, true);
  auto row_type =
      tf.CreateStructType({"id", "k", "d"}, {int_t, int_null, dbl_null});
  std::vector<Row> rows;
  rows.reserve(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    rows.push_back(
        {Value::Int(static_cast<int64_t>(i)),
         i % 3 == 0 ? Value::Null() : Value::Int(static_cast<int64_t>(i % 7)),
         i % 4 == 0 ? Value::Null()
                    : Value::Double(static_cast<double>(i % 13) * 0.5)});
  }
  auto table = std::make_shared<MemTable>(row_type, std::move(rows));
  auto logical =
      LogicalTableScan::Create(table, {"t"}, Convention::Enumerable(), tf);
  RelNodePtr scan = EnumerableTableScan::Create(
      *static_cast<const TableScan*>(logical.get()));

  auto ref = [&](int i) { return rex.MakeInputRef(scan->row_type(), i); };
  auto cond = rex.MakeCall(OpKind::kLessThan,
                           {ref(0), rex.MakeIntLiteral(90000)});
  ASSERT_TRUE(cond.ok());
  RelNodePtr filtered = EnumerableFilter::Create(scan, cond.value());
  auto twice =
      rex.MakeCall(OpKind::kTimes, {ref(0), rex.MakeIntLiteral(2)});
  ASSERT_TRUE(twice.ok());
  std::vector<RexNodePtr> exprs = {ref(1), twice.value(), ref(2)};
  auto proj_type = DeriveProjectRowType(exprs, {"k", "id2", "d"}, tf);
  RelNodePtr projected = EnumerableProject::Create(filtered, exprs, proj_type);
  std::vector<AggregateCall> calls;
  {
    AggregateCall c;
    c.kind = AggKind::kCountStar;
    c.name = "cnt";
    calls.push_back(c);
    c.kind = AggKind::kSum;
    c.args = {1};
    c.name = "sum_id2";
    calls.push_back(c);
    c.kind = AggKind::kAvg;
    c.args = {2};
    c.name = "avg_d";
    calls.push_back(c);
  }
  auto agg_type = DeriveAggregateRowType(proj_type, {0}, calls, tf);
  RelNodePtr plan =
      EnumerableAggregate::Create(projected, {0}, calls, agg_type);

  // Columnar pipeline: ExecuteBatched builds the plumbing (and the table's
  // columnar decomposition) eagerly; only the drain is measured.
  ExecOptions opts;
  ASSERT_TRUE(opts.enable_columnar);
  auto columnar = plan->ExecuteBatched(opts);
  ASSERT_TRUE(columnar.ok());
  auto [col_rows, col_allocs] = DrainCounted(columnar.value());
  // 8 groups: k ∈ {NULL, 0..6}.
  EXPECT_EQ(col_rows, 8u);
  // ~88 batches of 1024 rows flow through four operators; a small constant
  // number of allocations per batch (batch bookkeeping, selection vectors —
  // arenas are pooled) is fine, one per *row* (100k) is the bug this test
  // exists to catch.
  EXPECT_LT(col_allocs, 5000u) << "columnar hot path allocates per row";

  // The row path over the same plan boxes every surviving row (90k pass the
  // pushed filter): its allocation count scales with the row count, the
  // contrast that makes the bound above meaningful.
  ExecOptions row_opts;
  row_opts.enable_columnar = false;
  auto row_path = plan->ExecuteBatched(row_opts);
  ASSERT_TRUE(row_path.ok());
  auto [row_rows, row_allocs] = DrainCounted(row_path.value());
  EXPECT_EQ(row_rows, 8u);
  EXPECT_GT(row_allocs, size_t{80000});
  EXPECT_GT(row_allocs, col_allocs * 20);
}

}  // namespace
}  // namespace calcite
