// Asserts the columnar hot path's central memory claim: pulling a
// scan → filter → project → aggregate pipeline over ~100k rows performs no
// per-row heap allocation. Column storage is either a zero-copy view of the
// table's cached decomposition or bump-allocated from pooled arenas, so the
// allocation count of the whole drain is bounded by the number of batches
// (times a small constant), not the number of rows. The row path over the
// same plan boxes every row and is measured as the contrast.
//
// This test overrides the global operator new, so it must stay its own test
// binary (the per-file test executables guarantee that) and must not run
// under sanitizers, whose allocator interposition the override would fight.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "adapters/enumerable/enumerable_rels.h"
#include "exec/arena.h"
#include "exec/column_batch.h"
#include "rel/core.h"
#include "rex/rex_builder.h"
#include "rex/rex_columnar.h"
#include "rex/rex_fuse.h"
#include "tools/frameworks.h"

namespace {

std::atomic<size_t> g_alloc_count{0};
std::atomic<bool> g_counting{false};

void* CountedAlloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* ptr = std::malloc(size == 0 ? 1 : size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }

namespace calcite {
namespace {

constexpr size_t kRows = 100000;

/// Drains `puller`, counting heap allocations only inside the pull loop.
/// Returns {output rows, allocations}.
std::pair<size_t, size_t> DrainCounted(const RowBatchPuller& puller) {
  size_t out_rows = 0;
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  for (;;) {
    auto batch = puller();
    if (!batch.ok() || batch.value().empty()) break;
    out_rows += batch.value().size();
  }
  g_counting.store(false, std::memory_order_relaxed);
  return {out_rows, g_alloc_count.load(std::memory_order_relaxed)};
}

TEST(AllocCountTest, ColumnarHotPathDoesNoPerRowAllocation) {
  TypeFactory tf;
  RexBuilder rex;
  auto int_t = tf.CreateSqlType(SqlTypeName::kInteger);
  auto int_null = tf.CreateSqlType(SqlTypeName::kInteger, -1, true);
  auto dbl_null = tf.CreateSqlType(SqlTypeName::kDouble, -1, true);
  auto row_type =
      tf.CreateStructType({"id", "k", "d"}, {int_t, int_null, dbl_null});
  std::vector<Row> rows;
  rows.reserve(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    rows.push_back(
        {Value::Int(static_cast<int64_t>(i)),
         i % 3 == 0 ? Value::Null() : Value::Int(static_cast<int64_t>(i % 7)),
         i % 4 == 0 ? Value::Null()
                    : Value::Double(static_cast<double>(i % 13) * 0.5)});
  }
  auto table = std::make_shared<MemTable>(row_type, std::move(rows));
  auto logical =
      LogicalTableScan::Create(table, {"t"}, Convention::Enumerable(), tf);
  RelNodePtr scan = EnumerableTableScan::Create(
      *static_cast<const TableScan*>(logical.get()));

  auto ref = [&](int i) { return rex.MakeInputRef(scan->row_type(), i); };
  auto cond = rex.MakeCall(OpKind::kLessThan,
                           {ref(0), rex.MakeIntLiteral(90000)});
  ASSERT_TRUE(cond.ok());
  RelNodePtr filtered = EnumerableFilter::Create(scan, cond.value());
  auto twice =
      rex.MakeCall(OpKind::kTimes, {ref(0), rex.MakeIntLiteral(2)});
  ASSERT_TRUE(twice.ok());
  std::vector<RexNodePtr> exprs = {ref(1), twice.value(), ref(2)};
  auto proj_type = DeriveProjectRowType(exprs, {"k", "id2", "d"}, tf);
  RelNodePtr projected = EnumerableProject::Create(filtered, exprs, proj_type);
  std::vector<AggregateCall> calls;
  {
    AggregateCall c;
    c.kind = AggKind::kCountStar;
    c.name = "cnt";
    calls.push_back(c);
    c.kind = AggKind::kSum;
    c.args = {1};
    c.name = "sum_id2";
    calls.push_back(c);
    c.kind = AggKind::kAvg;
    c.args = {2};
    c.name = "avg_d";
    calls.push_back(c);
  }
  auto agg_type = DeriveAggregateRowType(proj_type, {0}, calls, tf);
  RelNodePtr plan =
      EnumerableAggregate::Create(projected, {0}, calls, agg_type);

  // Columnar pipeline: ExecuteBatched builds the plumbing (and the table's
  // columnar decomposition) eagerly; only the drain is measured.
  ExecOptions opts;
  ASSERT_TRUE(opts.enable_columnar);
  auto columnar = plan->ExecuteBatched(opts);
  ASSERT_TRUE(columnar.ok());
  auto [col_rows, col_allocs] = DrainCounted(columnar.value());
  // 8 groups: k ∈ {NULL, 0..6}.
  EXPECT_EQ(col_rows, 8u);
  // ~88 batches of 1024 rows flow through four operators; a small constant
  // number of allocations per batch (batch bookkeeping, selection vectors —
  // arenas are pooled) is fine, one per *row* (100k) is the bug this test
  // exists to catch.
  EXPECT_LT(col_allocs, 5000u) << "columnar hot path allocates per row";

  // The row path over the same plan boxes every surviving row (90k pass the
  // pushed filter): its allocation count scales with the row count, the
  // contrast that makes the bound above meaningful.
  ExecOptions row_opts;
  row_opts.enable_columnar = false;
  auto row_path = plan->ExecuteBatched(row_opts);
  ASSERT_TRUE(row_path.ok());
  auto [row_rows, row_allocs] = DrainCounted(row_path.value());
  EXPECT_EQ(row_rows, 8u);
  EXPECT_GT(row_allocs, size_t{80000});
  EXPECT_GT(row_allocs, col_allocs * 20);
}

// The fused bytecode interpreter's memory claim: evaluating a whole
// expression tree allocates exactly the result column from the output
// arena — every intermediate lives in the interpreter's fixed register
// scratch — while the per-node path materializes one arena temporary per
// operator. Measured directly via Arena::bytes_used on the same batch.
TEST(AllocCountTest, FusedEvalAddsNoArenaTemporaries) {
  TypeFactory tf;
  RexBuilder rex;
  auto int_t = tf.CreateSqlType(SqlTypeName::kInteger);
  auto int_null = tf.CreateSqlType(SqlTypeName::kInteger, -1, true);
  auto row_type = tf.CreateStructType({"id", "k"}, {int_t, int_null});
  constexpr size_t kN = 2048;  // two fused blocks
  RowBatch rows;
  rows.reserve(kN);
  for (size_t i = 0; i < kN; ++i) {
    rows.push_back(
        {Value::Int(static_cast<int64_t>(i)),
         i % 3 == 0 ? Value::Null() : Value::Int(static_cast<int64_t>(i % 7))});
  }
  auto cols = RowsToColumns(rows, *row_type);
  ASSERT_TRUE(cols.ok());
  const ColumnBatch& in = cols.value();

  // ($0 + $1) * 2 + $1 — three operator nodes, one result column.
  auto ref = [&](int i) { return rex.MakeInputRef(row_type, i); };
  auto sum = rex.MakeCall(OpKind::kPlus, {ref(0), ref(1)});
  ASSERT_TRUE(sum.ok());
  auto mul = rex.MakeCall(OpKind::kTimes, {sum.value(), rex.MakeIntLiteral(2)});
  ASSERT_TRUE(mul.ok());
  auto expr = rex.MakeCall(OpKind::kPlus, {mul.value(), ref(1)});
  ASSERT_TRUE(expr.ok());

  auto eval_bytes = [&](bool fuse) {
    ColumnBatch out;
    out.arena = std::make_shared<Arena>();
    out.ShareStorage(in);
    out.num_rows = in.ActiveCount();
    Status status =
        fuse ? FusedExpr(expr.value()).AppendEvalColumn(in, &out)
             : RexColumnar::AppendEvalColumn(expr.value(), in, &out);
    EXPECT_TRUE(status.ok()) << status.ToString();
    EXPECT_EQ(out.cols.size(), 1u);
    return out.arena->bytes_used();
  };
  const size_t fused_bytes = eval_bytes(true);
  const size_t pernode_bytes = eval_bytes(false);
  // Exactly one int64 data buffer plus one null bytemap (64-byte-aligned
  // arena starts): zero per-operator temporaries.
  EXPECT_LE(fused_bytes, kN * 8 + kN + 2 * Arena::kAlignment);
  // The per-node path materializes each intermediate — the contrast.
  EXPECT_GE(pernode_bytes, fused_bytes + 2 * kN * 8);
}

// A columnar filter -> project drain with fusion on stays batch-bounded on
// the heap too: the fused stages reuse their register scratch and compiled
// programs across every batch, so allocations scale with batch count (~98
// here), never row count — and never exceed the per-node path they replace.
TEST(AllocCountTest, FusedFilterProjectDrainStaysBatchBounded) {
  TypeFactory tf;
  RexBuilder rex;
  auto int_t = tf.CreateSqlType(SqlTypeName::kInteger);
  auto int_null = tf.CreateSqlType(SqlTypeName::kInteger, -1, true);
  auto row_type = tf.CreateStructType({"id", "k"}, {int_t, int_null});
  std::vector<Row> rows;
  rows.reserve(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    rows.push_back(
        {Value::Int(static_cast<int64_t>(i)),
         i % 3 == 0 ? Value::Null() : Value::Int(static_cast<int64_t>(i % 7))});
  }
  auto table = std::make_shared<MemTable>(row_type, std::move(rows));
  auto logical =
      LogicalTableScan::Create(table, {"t"}, Convention::Enumerable(), tf);
  RelNodePtr scan = EnumerableTableScan::Create(
      *static_cast<const TableScan*>(logical.get()));
  auto ref = [&](int i) { return rex.MakeInputRef(scan->row_type(), i); };
  // Range pair (fuses into the leaf scan as one interval test) plus a
  // residual over both columns.
  auto lo = rex.MakeCall(OpKind::kGreaterThanOrEqual,
                         {ref(0), rex.MakeIntLiteral(1000)});
  ASSERT_TRUE(lo.ok());
  auto hi = rex.MakeCall(OpKind::kLessThan,
                         {ref(0), rex.MakeIntLiteral(95000)});
  ASSERT_TRUE(hi.ok());
  auto res = rex.MakeCall(OpKind::kGreaterThan,
                          {rex.MakeCall(OpKind::kPlus, {ref(0), ref(1)})
                               .value(),
                           rex.MakeIntLiteral(1200)});
  ASSERT_TRUE(res.ok());
  RelNodePtr filtered = EnumerableFilter::Create(
      scan, rex.MakeAnd({lo.value(), hi.value(), res.value()}));
  auto twice = rex.MakeCall(
      OpKind::kPlus,
      {rex.MakeCall(OpKind::kTimes, {ref(0), rex.MakeIntLiteral(2)}).value(),
       ref(1)});
  ASSERT_TRUE(twice.ok());
  std::vector<RexNodePtr> exprs = {twice.value(), ref(1)};
  auto proj_type = DeriveProjectRowType(exprs, {"m", "k"}, tf);
  RelNodePtr plan = EnumerableProject::Create(filtered, exprs, proj_type);

  auto drain_columnar = [&](bool fuse) {
    ExecOptions opts;
    opts.enable_fusion = fuse;
    auto puller = plan->TryExecuteColumnar(opts);
    EXPECT_TRUE(puller.has_value() && puller->ok());
    size_t out_rows = 0;
    g_alloc_count.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
    for (;;) {
      auto batch = (puller->value())();
      EXPECT_TRUE(batch.ok());
      if (batch.value().AtEnd()) break;
      out_rows += batch.value().ActiveCount();
    }
    g_counting.store(false, std::memory_order_relaxed);
    return std::make_pair(out_rows,
                          g_alloc_count.load(std::memory_order_relaxed));
  };
  auto [fused_rows, fused_allocs] = drain_columnar(true);
  auto [pernode_rows, pernode_allocs] = drain_columnar(false);
  EXPECT_EQ(fused_rows, pernode_rows);
  // 94k rows pass the range; the residual drops NULL-k rows (a third).
  EXPECT_GT(fused_rows, 60000u);
  // ~98 batches; a handful of allocations per batch is bookkeeping, one per
  // row would be ~94k.
  EXPECT_LT(fused_allocs, 3000u) << "fused drain allocates per row";
  EXPECT_LE(fused_allocs, pernode_allocs + 200)
      << "fusion must not add steady-state allocations";
}

}  // namespace
}  // namespace calcite
