#include <gtest/gtest.h>

#include "geo/geometry.h"
#include "linq/enumerable.h"
#include "rex/rex_builder.h"
#include "rex/rex_interpreter.h"
#include "rex/rex_simplifier.h"
#include "rex/rex_util.h"
#include "sql/rel_to_sql.h"
#include "test_schema.h"
#include "tools/frameworks.h"
#include "util/json.h"
#include "util/string_utils.h"

namespace calcite {
namespace {

// ---------------------------------- util -----------------------------------

TEST(StatusTest, CodesAndFormatting) {
  EXPECT_TRUE(Status::OK().ok());
  Status st = Status::ParseError("boom");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_EQ(st.ToString(), "ParseError: boom");
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok = 42;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> err = Status::NotFound("nope");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

TEST(StringUtilsTest, Basics) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, "."), "a.b.c");
  EXPECT_EQ(Split("a,b,,c", ',').size(), 4u);
  EXPECT_EQ(ToUpper("MiXeD"), "MIXED");
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_TRUE(EqualsIgnoreCase("DeptNo", "deptno"));
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_TRUE(EndsWith("hello", "lo"));
}

TEST(StringUtilsTest, SqlLike) {
  EXPECT_TRUE(SqlLikeMatch("hello", "h%o"));
  EXPECT_TRUE(SqlLikeMatch("hello", "_ello"));
  EXPECT_TRUE(SqlLikeMatch("hello", "%"));
  EXPECT_FALSE(SqlLikeMatch("hello", "h_o"));
  EXPECT_TRUE(SqlLikeMatch("", "%"));
  EXPECT_FALSE(SqlLikeMatch("abc", ""));
  EXPECT_TRUE(SqlLikeMatch("a%c", "a%c"));
}

TEST(JsonTest, RoundTrip) {
  auto parsed = ParseJson(
      R"({"a": [1, 2.5, true, null], "b": {"nested": "x\"y"}})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& v = parsed.value();
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.Get("a")->as_array().size(), 4u);
  EXPECT_DOUBLE_EQ(v.Get("a")->as_array()[1].as_number(), 2.5);
  EXPECT_EQ(v.Get("b")->Get("nested")->as_string(), "x\"y");
  auto reparsed = ParseJson(v.Dump());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value().Dump(), v.Dump());
}

TEST(JsonTest, Errors) {
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("{} trailing").ok());
}

TEST(JsonTest, UnicodeEscape) {
  auto parsed = ParseJson(R"("café")");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().as_string(), "caf\xC3\xA9");
}

// --------------------------------- values ----------------------------------

TEST(ValueTest, CompareAcrossNumericRepresentations) {
  EXPECT_EQ(Value::Int(3).Compare(Value::Double(3.0)), 0);
  EXPECT_LT(Value::Int(2).Compare(Value::Double(2.5)), 0);
  EXPECT_EQ(Value::Int(3).Hash(), Value::Double(3.0).Hash());
}

TEST(ValueTest, NullOrdering) {
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
  EXPECT_LT(Value::Null().Compare(Value::Int(0)), 0);
}

TEST(ValueTest, MapAndArray) {
  Value m = Value::Map({{Value::String("k"), Value::Int(7)}});
  EXPECT_EQ(m.MapLookup(Value::String("k")).AsInt(), 7);
  EXPECT_TRUE(m.MapLookup(Value::String("missing")).IsNull());
  Value a = Value::Array({Value::Int(1), Value::Int(2)});
  EXPECT_EQ(a.AsArray().size(), 2u);
  EXPECT_EQ(a.ToString(), "[1, 2]");
}

// ---------------------------------- types ----------------------------------

TEST(TypeTest, LeastRestrictive) {
  TypeFactory tf;
  auto int_t = tf.CreateSqlType(SqlTypeName::kInteger);
  auto dbl_t = tf.CreateSqlType(SqlTypeName::kDouble);
  auto lr = tf.LeastRestrictive({int_t, dbl_t});
  ASSERT_NE(lr, nullptr);
  EXPECT_EQ(lr->type_name(), SqlTypeName::kDouble);

  auto v10 = tf.CreateSqlType(SqlTypeName::kVarchar, 10);
  auto v20 = tf.CreateSqlType(SqlTypeName::kVarchar, 20);
  EXPECT_EQ(tf.LeastRestrictive({v10, v20})->precision(), 20);

  auto bool_t = tf.CreateSqlType(SqlTypeName::kBoolean);
  EXPECT_EQ(tf.LeastRestrictive({int_t, bool_t}), nullptr);
}

TEST(TypeTest, StructLookupIsCaseInsensitive) {
  TypeFactory tf;
  auto row = tf.CreateStructType(
      {"DeptNo"}, {tf.CreateSqlType(SqlTypeName::kInteger)});
  EXPECT_NE(row->FindField("deptno"), nullptr);
  EXPECT_EQ(row->FindField("nope"), nullptr);
}

// ----------------------------------- rex -----------------------------------

TEST(RexTest, ThreeValuedLogic) {
  RexBuilder rex;
  TypeFactory tf;
  auto null_bool = rex.MakeNullLiteral(tf.CreateSqlType(SqlTypeName::kBoolean));
  // NULL AND FALSE = FALSE; NULL OR TRUE = TRUE; NULL AND TRUE = NULL.
  Row empty;
  auto and_false =
      rex.MakeAnd({null_bool, rex.MakeBoolLiteral(false)});
  EXPECT_FALSE(RexInterpreter::Eval(and_false, empty).value().IsNull());
  EXPECT_FALSE(RexInterpreter::Eval(and_false, empty).value().AsBool());
  auto or_true = rex.MakeOr({null_bool, rex.MakeBoolLiteral(true)});
  EXPECT_TRUE(RexInterpreter::Eval(or_true, empty).value().AsBool());
  auto and_true = rex.MakeAnd({null_bool, rex.MakeBoolLiteral(true)});
  EXPECT_TRUE(RexInterpreter::Eval(and_true, empty).value().IsNull());
}

TEST(RexTest, NullStrictComparison) {
  RexBuilder rex;
  TypeFactory tf;
  auto cmp = rex.MakeCall(
      OpKind::kEquals,
      {rex.MakeNullLiteral(tf.CreateSqlType(SqlTypeName::kInteger)),
       rex.MakeIntLiteral(1)});
  Row empty;
  EXPECT_TRUE(RexInterpreter::Eval(cmp.value(), empty).value().IsNull());
}

TEST(RexTest, DivisionByZeroIsRuntimeError) {
  RexBuilder rex;
  auto div = rex.MakeCall(OpKind::kDivide,
                          {rex.MakeIntLiteral(1), rex.MakeIntLiteral(0)});
  Row empty;
  auto result = RexInterpreter::Eval(div.value(), empty);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kRuntimeError);
}

TEST(RexSimplifierTest, ConstantFolding) {
  RexBuilder rex;
  RexSimplifier simplifier(rex);
  auto expr = rex.MakeCall(
      OpKind::kPlus,
      {rex.MakeIntLiteral(1),
       rex.MakeCall(OpKind::kTimes,
                    {rex.MakeIntLiteral(2), rex.MakeIntLiteral(3)})
           .value()});
  RexNodePtr simplified = simplifier.Simplify(expr.value());
  const RexLiteral* lit = AsLiteral(simplified);
  ASSERT_NE(lit, nullptr);
  EXPECT_EQ(lit->value().AsInt(), 7);
}

TEST(RexSimplifierTest, BooleanAlgebra) {
  RexBuilder rex;
  RexSimplifier simplifier(rex);
  RexNodePtr x = rex.MakeInputRef(
      0, RexBuilder().type_factory().CreateSqlType(SqlTypeName::kBoolean));
  // x AND TRUE -> x
  EXPECT_TRUE(RexUtil::Equal(
      simplifier.Simplify(rex.MakeAnd({x, rex.MakeBoolLiteral(true)})), x));
  // x OR TRUE -> TRUE
  EXPECT_TRUE(RexUtil::IsLiteralTrue(
      simplifier.Simplify(rex.MakeOr({x, rex.MakeBoolLiteral(true)}))));
  // x AND FALSE -> FALSE
  EXPECT_TRUE(RexUtil::IsLiteralFalse(
      simplifier.Simplify(rex.MakeAnd({x, rex.MakeBoolLiteral(false)}))));
  // NOT NOT x -> x
  auto not_x = rex.MakeCall(OpKind::kNot, {x});
  auto not_not_x = rex.MakeCall(OpKind::kNot, {not_x.value()});
  EXPECT_TRUE(RexUtil::Equal(simplifier.Simplify(not_not_x.value()), x));
}

TEST(RexSimplifierTest, Idempotent) {
  RexBuilder rex;
  RexSimplifier simplifier(rex);
  TypeFactory tf;
  RexNodePtr x = rex.MakeInputRef(0, tf.CreateSqlType(SqlTypeName::kInteger));
  auto expr = rex.MakeCall(
      OpKind::kGreaterThan,
      {rex.MakeCall(OpKind::kPlus, {x, rex.MakeIntLiteral(0)}).value(),
       rex.MakeIntLiteral(5)});
  RexNodePtr once = simplifier.Simplify(expr.value());
  RexNodePtr twice = simplifier.Simplify(once);
  EXPECT_EQ(once->ToString(), twice->ToString());
}

TEST(RexUtilTest, FlattenAndCompose) {
  RexBuilder rex;
  TypeFactory tf;
  RexNodePtr a = rex.MakeInputRef(0, tf.CreateSqlType(SqlTypeName::kBoolean));
  RexNodePtr b = rex.MakeInputRef(1, tf.CreateSqlType(SqlTypeName::kBoolean));
  RexNodePtr c = rex.MakeInputRef(2, tf.CreateSqlType(SqlTypeName::kBoolean));
  RexNodePtr nested = rex.MakeAnd({rex.MakeAnd({a, b}), c});
  auto flat = RexUtil::FlattenAnd(nested);
  EXPECT_EQ(flat.size(), 3u);
  EXPECT_TRUE(RexUtil::FlattenAnd(rex.MakeBoolLiteral(true)).empty());
}

TEST(RexUtilTest, ShiftAndRemap) {
  RexBuilder rex;
  TypeFactory tf;
  RexNodePtr ref = rex.MakeInputRef(2, tf.CreateSqlType(SqlTypeName::kInteger));
  EXPECT_EQ(RexUtil::ShiftRefs(ref, 3)->ToString(), "$5");
  EXPECT_EQ(RexUtil::RemapRefs(ref, {9, 8, 7})->ToString(), "$7");
  EXPECT_EQ(RexUtil::InputRefs(ref).count(2), 1u);
}

TEST(MonotonicityTest, WindowFunctionsPreserve) {
  RexBuilder rex;
  TypeFactory tf;
  RexNodePtr rowtime =
      rex.MakeInputRef(0, tf.CreateSqlType(SqlTypeName::kTimestamp));
  auto tumble = rex.MakeCall(
      OpKind::kTumble, {rowtime, rex.MakeIntervalLiteral(3600000)});
  EXPECT_EQ(DeriveMonotonicity(tumble.value(), {0}),
            Monotonicity::kIncreasing);
  EXPECT_EQ(DeriveMonotonicity(tumble.value(), {1}),
            Monotonicity::kNotMonotonic);
  auto negated = rex.MakeCall(OpKind::kUnaryMinus, {rowtime});
  EXPECT_EQ(DeriveMonotonicity(negated.value(), {0}),
            Monotonicity::kDecreasing);
}

// ----------------------------------- geo -----------------------------------

TEST(GeoTest, WktRoundTrip) {
  auto point = geo::GeomFromText("POINT (4.9 52.37)");
  ASSERT_TRUE(point.ok());
  EXPECT_EQ(point.value()->ToWkt(), "POINT (4.9 52.37)");
  auto poly = geo::GeomFromText("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))");
  ASSERT_TRUE(poly.ok());
  EXPECT_DOUBLE_EQ(poly.value()->Area(), 16.0);
  EXPECT_FALSE(geo::GeomFromText("CIRCLE (1 1)").ok());
}

TEST(GeoTest, ContainsAndIntersects) {
  auto poly = geo::GeomFromText("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))");
  auto inner = geo::Geometry::MakePoint(5, 5);
  auto outer = geo::Geometry::MakePoint(15, 5);
  EXPECT_TRUE(geo::Contains(*poly.value(), *inner));
  EXPECT_FALSE(geo::Contains(*poly.value(), *outer));
  EXPECT_TRUE(geo::Within(*inner, *poly.value()));
  auto line = geo::Geometry::MakeLineString({{-1, 5}, {11, 5}});
  EXPECT_TRUE(geo::Intersects(*poly.value(), *line));
}

TEST(GeoTest, Distance) {
  auto a = geo::Geometry::MakePoint(0, 0);
  auto b = geo::Geometry::MakePoint(3, 4);
  EXPECT_DOUBLE_EQ(geo::Distance(*a, *b), 5.0);
  auto line = geo::Geometry::MakeLineString({{0, 2}, {10, 2}});
  EXPECT_DOUBLE_EQ(geo::Distance(*a, *line), 2.0);
}

// ---------------------------------- linq -----------------------------------

TEST(LinqTest, PipelineComposition) {
  auto numbers = linq::Enumerable<int>::Range(1, 100, [](int64_t i) {
    return static_cast<int>(i);
  });
  auto result = numbers.Where([](const int& x) { return x % 3 == 0; })
                    .Select<int>([](const int& x) { return x * 2; })
                    .Take(5)
                    .ToVector();
  EXPECT_EQ(result, (std::vector<int>{6, 12, 18, 24, 30}));
}

TEST(LinqTest, LazyEvaluation) {
  int evaluations = 0;
  auto pipeline =
      linq::Enumerable<int>::Range(0, 1000, [&](int64_t i) {
        ++evaluations;
        return static_cast<int>(i);
      }).Take(3);
  EXPECT_EQ(evaluations, 0);  // nothing pulled yet
  EXPECT_EQ(pipeline.Count(), 3u);
  EXPECT_EQ(evaluations, 3);  // only what Take needed
}

TEST(LinqTest, GroupByAndJoin) {
  auto values = linq::Enumerable<int>::FromVector({1, 2, 3, 4, 5, 6});
  auto grouped = values.GroupBy<int, std::pair<int, size_t>>(
      [](const int& x) { return x % 2; },
      [](const int& key, const std::vector<int>& group) {
        return std::make_pair(key, group.size());
      });
  auto result = grouped.ToVector();
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].second, 3u);

  auto left = linq::Enumerable<int>::FromVector({1, 2, 3});
  auto right = linq::Enumerable<int>::FromVector({2, 3, 4});
  auto joined = left.Join<int, int, int>(
      right, [](const int& x) { return x; }, [](const int& y) { return y; },
      [](const int& x, const int& y) { return x + y; });
  EXPECT_EQ(joined.ToVector(), (std::vector<int>{4, 6}));
}

TEST(LinqTest, OrderByAndDistinct) {
  auto values = linq::Enumerable<int>::FromVector({3, 1, 2, 3, 1});
  auto sorted = values.OrderBy([](const int& a, const int& b) {
    return a - b;
  });
  EXPECT_EQ(sorted.ToVector(), (std::vector<int>{1, 1, 2, 3, 3}));
  auto distinct = values.Distinct([](const int& a, const int& b) {
    return a - b;
  });
  EXPECT_EQ(distinct.Count(), 3u);
}

// -------------------------------- rel-to-sql --------------------------------

TEST(RelToSqlTest, GeneratesDialectSpecificSql) {
  SchemaPtr schema = testing::MakeTestSchema();
  Connection conn{Connection::Config{schema}};
  auto logical = conn.ParseQuery(
      "SELECT deptno, COUNT(*) AS c FROM emps WHERE salary > 8000 "
      "GROUP BY deptno ORDER BY deptno LIMIT 2");
  ASSERT_TRUE(logical.ok());

  auto mysql = RelToSqlConverter(SqlDialect::MySql()).Convert(logical.value());
  ASSERT_TRUE(mysql.ok()) << mysql.status().ToString();
  EXPECT_NE(mysql.value().find("`"), std::string::npos);
  EXPECT_NE(mysql.value().find("LIMIT 2"), std::string::npos);

  auto ansi = RelToSqlConverter(SqlDialect::Ansi()).Convert(logical.value());
  ASSERT_TRUE(ansi.ok());
  EXPECT_NE(ansi.value().find("FETCH NEXT 2 ROWS ONLY"), std::string::npos);
  EXPECT_NE(ansi.value().find("\"emps\""), std::string::npos);
}

TEST(RelToSqlTest, RoundTripsThroughOwnParser) {
  // SQL -> algebra -> SQL -> algebra -> execute must give the same rows as
  // direct execution (the §3 "translate back to SQL" capability).
  SchemaPtr schema = testing::MakeTestSchema();
  Connection conn{Connection::Config{schema}};
  const std::string original =
      "SELECT name FROM emps WHERE deptno = 20 ORDER BY name";
  auto logical = conn.ParseQuery(original);
  ASSERT_TRUE(logical.ok());
  auto regenerated =
      RelToSqlConverter(SqlDialect::PostgreSql()).Convert(logical.value());
  ASSERT_TRUE(regenerated.ok()) << regenerated.status().ToString();

  auto direct = conn.Query(original);
  auto roundtrip = conn.Query(regenerated.value());
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(roundtrip.ok()) << regenerated.value() << "\n"
                              << roundtrip.status().ToString();
  ASSERT_EQ(direct.value().rows.size(), roundtrip.value().rows.size());
  for (size_t i = 0; i < direct.value().rows.size(); ++i) {
    EXPECT_EQ(RowToString(direct.value().rows[i]),
              RowToString(roundtrip.value().rows[i]));
  }
}

// --------------------------- property-based sweeps --------------------------

/// Plan invariance: for a family of generated queries, the fully optimized
/// plan returns exactly the rows of the unoptimized (converter-only) plan.
class PlanInvarianceTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PlanInvarianceTest, OptimizedMatchesNaive) {
  SchemaPtr schema = testing::MakeTestSchema();
  const std::string sql = GetParam();

  Connection optimized{Connection::Config{schema}};
  auto fast = optimized.Query(sql);
  ASSERT_TRUE(fast.ok()) << sql << "\n" << fast.status().ToString();

  Connection::Config naive_config{schema};
  naive_config.skip_logical_phase = true;
  Connection naive(naive_config);
  auto slow = naive.Query(sql);
  ASSERT_TRUE(slow.ok()) << sql << "\n" << slow.status().ToString();

  auto canonical = [](std::vector<Row> rows) {
    std::vector<std::string> out;
    for (const Row& row : rows) out.push_back(RowToString(row));
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(canonical(fast.value().rows), canonical(slow.value().rows))
      << sql;
}

INSTANTIATE_TEST_SUITE_P(
    QueryFamily, PlanInvarianceTest,
    ::testing::Values(
        "SELECT * FROM emps",
        "SELECT * FROM emps WHERE deptno = 10 AND salary > 9000",
        "SELECT * FROM emps WHERE deptno = 10 OR name LIKE 'S%'",
        "SELECT name, salary * 2 FROM emps WHERE TRUE",
        "SELECT e.name, d.dept_name FROM emps e JOIN depts d ON "
        "e.deptno = d.deptno WHERE e.salary > 7000",
        "SELECT d.dept_name, COUNT(*) FROM emps e JOIN depts d ON "
        "e.deptno = d.deptno GROUP BY d.dept_name",
        "SELECT p.name, SUM(s.units) FROM sales s JOIN products p ON "
        "s.productId = p.productId WHERE s.discount IS NOT NULL "
        "GROUP BY p.name",
        "SELECT deptno FROM emps UNION SELECT deptno FROM depts",
        "SELECT deptno, COUNT(*) FROM emps GROUP BY deptno "
        "HAVING COUNT(*) >= 1",
        "SELECT * FROM emps WHERE 1 = 0",
        "SELECT * FROM emps WHERE salary BETWEEN 7000 AND 10000 "
        "ORDER BY empid LIMIT 3",
        "SELECT DISTINCT deptno FROM emps WHERE empid > 0"));

/// Digest laws: equal trees have equal digests; different attributes yield
/// different digests.
class DigestTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DigestTest, DigestEqualityMatchesStructure) {
  SchemaPtr schema = testing::MakeTestSchema();
  Connection c1{Connection::Config{schema}};
  Connection c2{Connection::Config{schema}};
  auto p1 = c1.ParseQuery(GetParam());
  auto p2 = c2.ParseQuery(GetParam());
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p1.value()->Digest(), p2.value()->Digest());

  // A different filter constant must change the digest.
  auto p3 = c1.ParseQuery("SELECT * FROM emps WHERE deptno = 11");
  auto p4 = c1.ParseQuery("SELECT * FROM emps WHERE deptno = 12");
  EXPECT_NE(p3.value()->Digest(), p4.value()->Digest());
}

INSTANTIATE_TEST_SUITE_P(
    Digests, DigestTest,
    ::testing::Values("SELECT * FROM emps WHERE deptno = 10",
                      "SELECT deptno, COUNT(*) FROM emps GROUP BY deptno",
                      "SELECT name FROM emps ORDER BY salary DESC"));

/// Simplifier soundness: for expressions over a sample row, the simplified
/// expression evaluates to the same value as the original.
class SimplifierSoundnessTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(SimplifierSoundnessTest, SameValueAfterSimplification) {
  SchemaPtr schema = testing::MakeTestSchema();
  Connection conn{Connection::Config{schema}};
  // Wrap the expression in a projection over emps and compare results with
  // the logical phase (which simplifies) against naive conversion.
  std::string sql = "SELECT " + GetParam() + " FROM emps";
  Connection::Config naive_config{schema};
  naive_config.skip_logical_phase = true;
  Connection naive(naive_config);
  auto a = conn.Query(sql);
  auto b = naive.Query(sql);
  ASSERT_TRUE(a.ok()) << sql << a.status().ToString();
  ASSERT_TRUE(b.ok()) << sql << b.status().ToString();
  ASSERT_EQ(a.value().rows.size(), b.value().rows.size());
  for (size_t i = 0; i < a.value().rows.size(); ++i) {
    EXPECT_EQ(RowToString(a.value().rows[i]), RowToString(b.value().rows[i]))
        << sql;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Exprs, SimplifierSoundnessTest,
    ::testing::Values("1 + 2 * 3", "salary + 0", "deptno = deptno",
                      "CASE WHEN TRUE THEN salary ELSE 0 END",
                      "CASE WHEN FALSE THEN 0.0 ELSE salary END",
                      "NOT (deptno < 20)", "UPPER(LOWER(name))",
                      "CAST(CAST(deptno AS VARCHAR(10)) AS INTEGER)",
                      "COALESCE(NULL, deptno)",
                      "salary > 5000 AND TRUE", "deptno IN (10, 20, 30)"));

}  // namespace
}  // namespace calcite
