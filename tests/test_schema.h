#ifndef CALCITE_TESTS_TEST_SCHEMA_H_
#define CALCITE_TESTS_TEST_SCHEMA_H_

#include <memory>
#include <string>
#include <vector>

#include "schema/schema.h"
#include "schema/table.h"
#include "type/rel_data_type.h"
#include "type/value.h"

namespace calcite::testing {

/// Builds the sample "hr + sales" catalog used across tests and benches:
///
///   emps(empid INT, deptno INT, name VARCHAR, salary DOUBLE)   (5 rows)
///   depts(deptno INT, dept_name VARCHAR)                       (3 rows)
///   sales(saleid INT, productId INT, discount DOUBLE?, units INT)
///   products(productId INT, name VARCHAR)
inline SchemaPtr MakeTestSchema() {
  TypeFactory tf;
  auto schema = std::make_shared<Schema>();

  auto int_t = tf.CreateSqlType(SqlTypeName::kInteger);
  auto str_t = tf.CreateSqlType(SqlTypeName::kVarchar, 20);
  auto dbl_t = tf.CreateSqlType(SqlTypeName::kDouble);
  auto dbl_null_t = tf.CreateSqlType(SqlTypeName::kDouble, -1, true);

  {
    auto row = tf.CreateStructType({"empid", "deptno", "name", "salary"},
                                   {int_t, int_t, str_t, dbl_t});
    std::vector<Row> rows = {
        {Value::Int(100), Value::Int(10), Value::String("Bill"),
         Value::Double(10000)},
        {Value::Int(110), Value::Int(10), Value::String("Theodore"),
         Value::Double(11500)},
        {Value::Int(150), Value::Int(20), Value::String("Sebastian"),
         Value::Double(7000)},
        {Value::Int(200), Value::Int(20), Value::String("Eric"),
         Value::Double(8000)},
        {Value::Int(210), Value::Int(30), Value::String("Anna"),
         Value::Double(9000)},
    };
    auto table = std::make_shared<MemTable>(row, std::move(rows));
    Statistic stat;
    stat.row_count = 5;
    stat.unique_keys = {{0}};
    table->set_statistic(stat);
    schema->AddTable("emps", table);
  }
  {
    auto row = tf.CreateStructType({"deptno", "dept_name"}, {int_t, str_t});
    std::vector<Row> rows = {
        {Value::Int(10), Value::String("Sales")},
        {Value::Int(20), Value::String("Engineering")},
        {Value::Int(30), Value::String("Marketing")},
    };
    auto table = std::make_shared<MemTable>(row, std::move(rows));
    Statistic stat;
    stat.row_count = 3;
    stat.unique_keys = {{0}};
    table->set_statistic(stat);
    schema->AddTable("depts", table);
  }
  {
    auto row = tf.CreateStructType({"saleid", "productId", "discount", "units"},
                                   {int_t, int_t, dbl_null_t, int_t});
    std::vector<Row> rows = {
        {Value::Int(1), Value::Int(1), Value::Double(0.1), Value::Int(3)},
        {Value::Int(2), Value::Int(1), Value::Null(), Value::Int(1)},
        {Value::Int(3), Value::Int(2), Value::Double(0.2), Value::Int(7)},
        {Value::Int(4), Value::Int(3), Value::Null(), Value::Int(2)},
        {Value::Int(5), Value::Int(2), Value::Double(0.0), Value::Int(4)},
        {Value::Int(6), Value::Int(3), Value::Double(0.5), Value::Int(9)},
    };
    auto table = std::make_shared<MemTable>(row, std::move(rows));
    Statistic stat;
    stat.row_count = 6;
    stat.unique_keys = {{0}};
    table->set_statistic(stat);
    schema->AddTable("sales", table);
  }
  {
    auto row = tf.CreateStructType({"productId", "name"}, {int_t, str_t});
    std::vector<Row> rows = {
        {Value::Int(1), Value::String("Widget")},
        {Value::Int(2), Value::String("Gadget")},
        {Value::Int(3), Value::String("Gizmo")},
    };
    auto table = std::make_shared<MemTable>(row, std::move(rows));
    Statistic stat;
    stat.row_count = 3;
    stat.unique_keys = {{0}};
    table->set_statistic(stat);
    schema->AddTable("products", table);
  }
  return schema;
}

}  // namespace calcite::testing

#endif  // CALCITE_TESTS_TEST_SCHEMA_H_
